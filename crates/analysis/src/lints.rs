//! The three fusion-safety lints: barrier divergence, partial-barrier
//! structure, and *definite* shared-memory races.
//!
//! The race lint is a must-analysis: it reports only when it can exhibit two
//! concrete thread ids, in different warps, touching the same shared-memory
//! element in the same barrier-delimited phase with at least one non-atomic
//! write. Every unknown (unparsable guard, loop-variant index, address-taken
//! array, multi-dimensional thread indexing) makes it *silent*, never noisy —
//! so a diagnostic is a proof, modulo reachability of block-uniform guards.
//! The barrier lints lean the other way: a barrier whose execution depends on
//! a non-uniform condition the analysis cannot pin down exactly is an error.

use std::collections::{HashMap, HashSet};

use cuda_frontend::ast::{AssignOp, Axis, BuiltinVar, Expr, Function, Stmt};
use cuda_frontend::diag::{Diagnostic, Severity, SpanTable};

use crate::cfg::{BlockId, CStmt, CStmtKind, Cfg, Term};
use crate::uniformity::{
    eval, eval_mut, eval_pred, AbsVal, IntervalSet, State, Uniformity, UniformityAnalysis,
};

/// Diagnostic code for barriers under divergent control.
pub const CODE_BARRIER_DIVERGENCE: &str = "barrier-divergence";
/// Diagnostic code for malformed `bar.sync` structure.
pub const CODE_PARTIAL_BARRIER: &str = "partial-barrier";
/// Diagnostic code for definite shared-memory races.
pub const CODE_SHARED_RACE: &str = "shared-race";

/// Options threaded through the lints.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintCtx {
    /// `blockDim.x`, when the launch configuration is known (it always is at
    /// fuse time). `None` means "lint standalone source": thread-set-versus-
    /// block-size checks that need the block size are skipped, and the τ
    /// universe defaults to the hardware maximum of 1024.
    pub block_threads: Option<u32>,
}

impl LintCtx {
    pub(crate) fn universe(&self) -> i64 {
        self.block_threads.map_or(1024, i64::from)
    }
}

fn diag(code: &str, span_idx: Option<usize>, spans: Option<&SpanTable>, msg: String) -> Diagnostic {
    let span = span_idx.and_then(|i| spans.and_then(|t| t.get(i)));
    Diagnostic::new(Severity::Error, code, span, msg)
}

// ---------------------------------------------------------------------------
// Barrier lints
// ---------------------------------------------------------------------------

/// The arrival set of a block: which τ reach it, as far as the parsable
/// control dependences say.
pub(crate) enum Arrival {
    /// Exactly this set (constrained only by parsable non-uniform guards).
    Exact(IntervalSet),
    /// Some non-uniform controlling condition was not parsable.
    Unknown,
}

pub(crate) fn arrival_set(
    cfg: &Cfg,
    ua: &UniformityAnalysis,
    block: BlockId,
    ctx: &LintCtx,
) -> Arrival {
    let universe = ctx.universe();
    let mut set = IntervalSet::full(universe);
    for cd in &ua.cds[block] {
        let Term::Branch { cond, .. } = &cfg.blocks[cd.branch].term else {
            continue;
        };
        let Some(st) = ua.outs[cd.branch].as_ref() else {
            continue;
        };
        if eval(cond, st, ctx.block_threads).u == Uniformity::BlockUniform {
            // Uniform guards cannot split the block; whether the barrier runs
            // at all is a reachability question, not a divergence one.
            continue;
        }
        match eval_pred(cond, st, universe, ctx.block_threads) {
            Some(p) => {
                let p = if cd.polarity {
                    p
                } else {
                    p.complement(universe)
                };
                set = set.intersect(&p);
            }
            None => return Arrival::Unknown,
        }
    }
    Arrival::Exact(set)
}

/// Runs the barrier-divergence and partial-barrier lints.
pub fn barrier_lints(
    cfg: &Cfg,
    ua: &UniformityAnalysis,
    spans: Option<&SpanTable>,
    ctx: &LintCtx,
) -> Vec<Diagnostic> {
    let universe = ctx.universe();
    let mut out = Vec::new();
    let mut bar_counts: HashMap<u32, u32> = HashMap::new();
    for (b, bb) in cfg.blocks.iter().enumerate() {
        let Some(stmt) = bb.stmts.first() else {
            continue;
        };
        let span_idx = stmt.span_idx;
        match stmt.kind {
            CStmtKind::Sync => match arrival_set(cfg, ua, b, ctx) {
                Arrival::Unknown => out.push(diag(
                    CODE_BARRIER_DIVERGENCE,
                    span_idx,
                    spans,
                    "__syncthreads() is control-dependent on a non-uniform condition; \
                     threads of the same block may disagree on reaching this barrier"
                        .into(),
                )),
                Arrival::Exact(set) => {
                    if ctx.block_threads.is_some() && !set.is_full(universe) {
                        out.push(diag(
                            CODE_BARRIER_DIVERGENCE,
                            span_idx,
                            spans,
                            format!(
                                "__syncthreads() is only reached by {} of {} threads \
                                 of the block",
                                set.count(),
                                universe
                            ),
                        ));
                    }
                }
            },
            CStmtKind::BarSync { id, count } => {
                if count % 32 != 0 {
                    out.push(diag(
                        CODE_PARTIAL_BARRIER,
                        span_idx,
                        spans,
                        format!(
                            "bar.sync {id} declares {count} participating threads, \
                             which is not a multiple of the warp size (32)"
                        ),
                    ));
                }
                if let Some(prev) = bar_counts.insert(id, count) {
                    if prev != count {
                        out.push(diag(
                            CODE_PARTIAL_BARRIER,
                            span_idx,
                            spans,
                            format!(
                                "bar.sync {id} is used with mismatched thread counts \
                                 ({prev} and {count})"
                            ),
                        ));
                    }
                }
                match arrival_set(cfg, ua, b, ctx) {
                    Arrival::Unknown => out.push(diag(
                        CODE_BARRIER_DIVERGENCE,
                        span_idx,
                        spans,
                        format!(
                            "bar.sync {id} is control-dependent on a non-uniform \
                             condition the analysis cannot resolve; its arrival set \
                             is unknown"
                        ),
                    )),
                    Arrival::Exact(set) => {
                        if ctx.block_threads.is_some() {
                            if set.count() != i64::from(count) {
                                out.push(diag(
                                    CODE_PARTIAL_BARRIER,
                                    span_idx,
                                    spans,
                                    format!(
                                        "bar.sync {id} declares {count} participants \
                                         but {} threads arrive",
                                        set.count()
                                    ),
                                ));
                            } else if !set.is_warp_aligned() {
                                out.push(diag(
                                    CODE_PARTIAL_BARRIER,
                                    span_idx,
                                    spans,
                                    format!(
                                        "the threads arriving at bar.sync {id} do not \
                                         form whole warps"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shared-memory race lint
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Access {
    arr: String,
    write: bool,
    atomic: bool,
    block: BlockId,
    /// Index as `a·τ + b` (Const is `a = 0`); `None` disables the access.
    idx: Option<(i64, i64)>,
    span_idx: Option<usize>,
}

struct Collector<'a> {
    shared: HashSet<String>,
    poisoned: HashSet<String>,
    accesses: Vec<Access>,
    block: BlockId,
    tset: Option<&'a IntervalSet>,
    span_idx: Option<usize>,
    state: &'a State,
    block_threads: Option<u32>,
}

impl Collector<'_> {
    fn record(&mut self, arr: &str, idx: &Expr, write: bool, atomic: bool) {
        let resolved = self.resolve_index(idx);
        self.accesses.push(Access {
            arr: arr.to_owned(),
            write,
            atomic,
            block: self.block,
            idx: resolved,
            span_idx: self.span_idx,
        });
    }

    /// Resolves an index expression to an exact affine function of τ over the
    /// access's thread set, or `None`.
    fn resolve_index(&self, idx: &Expr) -> Option<(i64, i64)> {
        let v = eval(idx, self.state, self.block_threads).val?;
        match v {
            AbsVal::Const(c) => Some((0, c)),
            AbsVal::Affine { a, b } => Some((a, b)),
            AbsVal::TidMod { a, b, m, off } => {
                // `(a·τ + b) % m` collapses to `a·τ + b − k·m` only when the
                // executing threads keep the argument inside one non-negative
                // period (C truncated remainder equals math mod only there).
                let tset = self.tset?;
                let lo = a
                    .checked_mul(if a >= 0 { tset.min()? } else { tset.max()? })?
                    .checked_add(b)?;
                let hi = a
                    .checked_mul(if a >= 0 { tset.max()? } else { tset.min()? })?
                    .checked_add(b)?;
                let k = div_floor(lo, m);
                if k >= 0 && div_floor(hi, m) == k {
                    Some((a, (b - k * m).checked_add(off)?))
                } else {
                    None
                }
            }
        }
    }

    fn walk(&mut self, e: &Expr) {
        match e {
            Expr::Assign(op, lhs, rhs) => {
                self.walk_lvalue(lhs, matches!(op, AssignOp::Compound(_)));
                self.walk(rhs);
            }
            Expr::IncDec { target, .. } => self.walk_lvalue(target, true),
            Expr::Call(name, args) => {
                let is_atomic = matches!(name.as_str(), "atomicAdd" | "atomicMax" | "atomicExch");
                let mut rest = &args[..];
                if is_atomic {
                    if let Some(Expr::AddrOf(inner)) = args.first() {
                        if let Expr::Index(base, idx) = inner.as_ref() {
                            if let Expr::Ident(arr) = base.as_ref() {
                                if self.shared.contains(arr) {
                                    self.record(&arr.clone(), idx, true, true);
                                    self.walk(idx);
                                    rest = &args[1..];
                                }
                            }
                        }
                    }
                }
                for a in rest {
                    self.walk(a);
                }
            }
            Expr::Index(base, idx) => {
                if let Expr::Ident(arr) = base.as_ref() {
                    if self.shared.contains(arr) {
                        self.record(&arr.clone(), idx, false, false);
                    }
                } else {
                    self.walk(base);
                }
                self.walk(idx);
            }
            Expr::AddrOf(inner) => {
                // Any address-taken shared array escapes the index-level
                // model (the atomic arg0 form is intercepted above).
                match inner.as_ref() {
                    Expr::Index(base, idx) => {
                        if let Expr::Ident(arr) = base.as_ref() {
                            self.poisoned.insert(arr.clone());
                        } else {
                            self.walk(base);
                        }
                        self.walk(idx);
                    }
                    Expr::Ident(name) => {
                        self.poisoned.insert(name.clone());
                    }
                    other => self.walk(other),
                }
            }
            Expr::Ident(name) => {
                // A bare use of an array name (pointer decay, casts,
                // arithmetic) escapes the model too.
                if self.shared.contains(name) {
                    self.poisoned.insert(name.clone());
                }
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::Deref(a) => self.walk(a),
            Expr::Binary(_, a, b) => {
                self.walk(a);
                self.walk(b);
            }
            Expr::Ternary(a, b, c) => {
                self.walk(a);
                self.walk(b);
                self.walk(c);
            }
            Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Builtin(_) => {}
        }
    }

    fn walk_lvalue(&mut self, lhs: &Expr, also_reads: bool) {
        if let Expr::Index(base, idx) = lhs {
            if let Expr::Ident(arr) = base.as_ref() {
                if self.shared.contains(arr) {
                    let arr = arr.clone();
                    self.record(&arr, idx, true, false);
                    if also_reads {
                        self.record(&arr, idx, false, false);
                    }
                    self.walk(idx);
                    return;
                }
            }
        }
        self.walk(lhs);
    }
}

fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

pub(crate) fn uses_multidim_threads(f: &Function) -> bool {
    fn expr_uses(e: &Expr) -> bool {
        let mut found = false;
        visit_exprs(e, &mut |x| {
            if let Expr::Builtin(BuiltinVar::ThreadIdx(Axis::Y | Axis::Z)) = x {
                found = true;
            }
        });
        found
    }
    let mut found = false;
    cuda_frontend::diag::preorder_stmts(f, &mut |s| {
        if found {
            return;
        }
        found = match s {
            Stmt::Decl(d) => d.init.as_ref().is_some_and(expr_uses),
            Stmt::Expr(e) | Stmt::While(e, _) | Stmt::DoWhile(_, e) => expr_uses(e),
            Stmt::If(e, ..) => expr_uses(e),
            Stmt::For { cond, step, .. } => {
                cond.as_ref().is_some_and(expr_uses) || step.as_ref().is_some_and(expr_uses)
            }
            Stmt::Switch { scrutinee, .. } => expr_uses(scrutinee),
            Stmt::Return(e) => e.as_ref().is_some_and(expr_uses),
            _ => false,
        };
    });
    found
}

fn visit_exprs(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::AddrOf(a) | Expr::Deref(a) => {
            visit_exprs(a, f)
        }
        Expr::Binary(_, a, b) | Expr::Index(a, b) | Expr::Assign(_, a, b) => {
            visit_exprs(a, f);
            visit_exprs(b, f);
        }
        Expr::Ternary(a, b, c) => {
            visit_exprs(a, f);
            visit_exprs(b, f);
            visit_exprs(c, f);
        }
        Expr::IncDec { target, .. } => visit_exprs(target, f),
        Expr::Call(_, args) => args.iter().for_each(|a| visit_exprs(a, f)),
        _ => {}
    }
}

/// Runs the definite shared-memory race lint.
pub fn race_lints(
    cfg: &Cfg,
    ua: &UniformityAnalysis,
    f: &Function,
    spans: Option<&SpanTable>,
    ctx: &LintCtx,
) -> Vec<Diagnostic> {
    // With 2-D/3-D thread indexing, τ alone neither identifies a thread nor
    // its warp, so "different warp" claims would be unsound. Stay silent.
    if uses_multidim_threads(f) {
        return Vec::new();
    }

    // Per-block executing thread sets (None = some guard unparsable).
    let tsets: Vec<Option<IntervalSet>> = (0..cfg.blocks.len())
        .map(|b| match arrival_set(cfg, ua, b, ctx) {
            Arrival::Exact(s) => Some(s),
            Arrival::Unknown => None,
        })
        .collect();

    // Collect shared arrays, poisoned arrays, and every access.
    let mut shared: HashSet<String> = HashSet::new();
    for bb in &cfg.blocks {
        for s in &bb.stmts {
            if let CStmtKind::Decl(d) = &s.kind {
                if d.quals.shared || d.quals.extern_shared {
                    shared.insert(d.name.clone());
                }
            }
        }
    }
    let mut poisoned: HashSet<String> = HashSet::new();
    let mut accesses: Vec<Access> = Vec::new();
    for (b, bb) in cfg.blocks.iter().enumerate() {
        let Some(in_state) = ua.ins[b].as_ref() else {
            continue;
        };
        let mut state = in_state.clone();
        let visit = |c: &mut Collector, e: &Expr, span: Option<usize>| {
            c.span_idx = span;
            c.walk(e);
        };
        for s in &bb.stmts {
            let mut c = Collector {
                shared: shared.clone(),
                poisoned: std::mem::take(&mut poisoned),
                accesses: std::mem::take(&mut accesses),
                block: b,
                tset: tsets[b].as_ref(),
                span_idx: s.span_idx,
                state: &state,
                block_threads: ctx.block_threads,
            };
            match &s.kind {
                CStmtKind::Decl(d) => {
                    if let Some(init) = &d.init {
                        visit(&mut c, init, s.span_idx);
                    }
                }
                CStmtKind::Expr(e) => visit(&mut c, e, s.span_idx),
                CStmtKind::Sync | CStmtKind::BarSync { .. } => {}
            }
            poisoned = c.poisoned;
            accesses = c.accesses;
            // Advance the state past this statement.
            apply_stmt(s, &mut state, ctx.block_threads);
        }
        if let Term::Branch { cond, span_idx, .. } = &bb.term {
            let mut c = Collector {
                shared: shared.clone(),
                poisoned: std::mem::take(&mut poisoned),
                accesses: std::mem::take(&mut accesses),
                block: b,
                tset: tsets[b].as_ref(),
                span_idx: *span_idx,
                state: &state,
                block_threads: ctx.block_threads,
            };
            c.walk(cond);
            poisoned = c.poisoned;
            accesses = c.accesses;
        }
    }

    // Phase-concurrency: two accesses may run unsynchronised iff some phase
    // start reaches both blocks without crossing a barrier.
    let reaches: Vec<Vec<bool>> = cfg
        .phase_starts()
        .into_iter()
        .map(|p| cfg.barrier_free_reach(p))
        .collect();
    let concurrent = |b1: BlockId, b2: BlockId| reaches.iter().any(|r| r[b1] && r[b2]);

    let live: Vec<&Access> = accesses
        .iter()
        .filter(|a| !poisoned.contains(&a.arr) && a.idx.is_some())
        .collect();

    let mut out = Vec::new();
    let mut reported: HashSet<(String, Option<usize>, Option<usize>)> = HashSet::new();
    for (i, a) in live.iter().enumerate() {
        for b2 in &live[i..] {
            if a.arr != b2.arr
                || !(a.write || b2.write)
                || (a.atomic && b2.atomic)
                || !concurrent(a.block, b2.block)
            {
                continue;
            }
            let (Some(sa), Some(sb)) = (&tsets[a.block], &tsets[b2.block]) else {
                continue;
            };
            if sa.count() > 0
                && racing_pair_exists(a.idx.unwrap(), sa, b2.idx.unwrap(), sb)
                && reported.insert((
                    a.arr.clone(),
                    a.span_idx.min(b2.span_idx),
                    a.span_idx.max(b2.span_idx),
                ))
            {
                let what = match (a.write, b2.write) {
                    (true, true) => "two writes",
                    _ => "a read and a write",
                };
                out.push(diag(
                    CODE_SHARED_RACE,
                    a.span_idx.or(b2.span_idx),
                    spans,
                    format!(
                        "definite data race on shared array `{}`: {} from threads \
                         in different warps touch the same element with no \
                         intervening barrier",
                        a.arr, what
                    ),
                ));
            }
        }
    }
    out
}

fn apply_stmt(s: &CStmt, state: &mut State, block_threads: Option<u32>) {
    match &s.kind {
        CStmtKind::Decl(d) => {
            let fact = if d.array_len.is_some() {
                crate::uniformity::Fact::uniform()
            } else {
                match &d.init {
                    Some(init) => eval_mut(init, state, block_threads),
                    None => crate::uniformity::Fact::divergent(),
                }
            };
            state.insert(d.name.clone(), fact);
        }
        CStmtKind::Expr(e) => {
            eval_mut(e, state, block_threads);
        }
        CStmtKind::Sync | CStmtKind::BarSync { .. } => {}
    }
}

/// True when concrete `τ1 ∈ sa`, `τ2 ∈ sb` exist with `τ1 ≠ τ2`, in different
/// warps, such that `a1·τ1 + b1 == a2·τ2 + b2`.
pub(crate) fn racing_pair_exists(
    (a1, b1): (i64, i64),
    sa: &IntervalSet,
    (a2, b2): (i64, i64),
    sb: &IntervalSet,
) -> bool {
    for t1 in sa.members() {
        let Some(target) = a1.checked_mul(t1).and_then(|v| v.checked_add(b1)) else {
            continue;
        };
        if a2 != 0 {
            let d = target - b2;
            if d % a2 != 0 {
                continue;
            }
            let t2 = d / a2;
            if sb.contains(t2) && t2 != t1 && t2 / 32 != t1 / 32 {
                return true;
            }
        } else {
            if target != b2 {
                continue;
            }
            if sb.members().any(|t2| t2 != t1 && t2 / 32 != t1 / 32) {
                return true;
            }
        }
    }
    false
}
