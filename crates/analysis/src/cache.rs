//! Process-wide memoization of [`analyze_kernel`] and the range summaries.
//!
//! The static fusion-safety analysis runs in three places: the `hfuse
//! lint` CLI, the safety gate inside `horizontal_fuse`, and (through the
//! `Session` query layer in `hfuse-core`) the memoized `lints(k)` query.
//! Before this cache, a kernel linted by the CLI was re-analyzed from
//! scratch by the fuse gate in the same process, and every register-bound
//! sibling of a search candidate re-analyzed the identical fused function.
//! All three paths now share one table keyed by content: the FNV-1a hash
//! of the *printed* function (so whitespace and macro-expansion history
//! don't matter), the `block_threads` assumption the lints ran under, and
//! a fingerprint of the global-extent map feeding the out-of-bounds lint.
//!
//! The first computation of a key wins and is shared verbatim — including
//! its span information. A caller that analyzes with a [`SpanTable`] after
//! someone already cached the span-less result receives the span-less
//! diagnostics (and vice versa); diagnostics differ only in source
//! positions, never in substance, so every consumer (the gate checks
//! emptiness, the CLI prints messages) stays correct.
//!
//! A second table memoizes [`summarize_ranges`] the same way (extents do
//! not feed summaries, so that key is just content × block width); its
//! counters are surfaced separately in [`AnalysisCacheStats`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cuda_frontend::ast::Function;
use cuda_frontend::diag::{Diagnostic, SpanTable};
use cuda_frontend::hash::fnv1a_64;
use cuda_frontend::printer::print_function;

use crate::ranges::{extents_fingerprint, summarize_ranges, KernelRangeSummary};
use crate::{analyze_kernel, AnalysisOptions};

/// Content hash of a kernel: FNV-1a over the pretty-printed function.
/// Stable under reformatting of the original source, since the printer
/// canonicalizes layout.
#[must_use]
pub fn function_content_hash(f: &Function) -> u64 {
    fnv1a_64(print_function(f).as_bytes())
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<(u64, Option<u32>, u64), Arc<Vec<Diagnostic>>>,
    hits: u64,
    misses: u64,
    ranges: HashMap<(u64, Option<u32>), Arc<KernelRangeSummary>>,
    range_hits: u64,
    range_misses: u64,
}

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CacheInner::default()))
}

/// Hit/miss counters of the process-wide analysis cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisCacheStats {
    /// Lint lookups served from the cache.
    pub hits: u64,
    /// Lint lookups that ran the analysis.
    pub misses: u64,
    /// Distinct `(function content, block_threads, extents)` lint keys.
    pub entries: usize,
    /// Range-summary lookups served from the cache.
    pub range_hits: u64,
    /// Range-summary lookups that ran the analysis.
    pub range_misses: u64,
    /// Distinct `(function content, block_threads)` summary keys.
    pub range_entries: usize,
}

/// Snapshot of the cache counters. Tests assert on *deltas* of these, since
/// the cache is shared by every thread of the process.
#[must_use]
pub fn analysis_cache_stats() -> AnalysisCacheStats {
    let inner = cache().lock().expect("analysis cache poisoned");
    AnalysisCacheStats {
        hits: inner.hits,
        misses: inner.misses,
        entries: inner.map.len(),
        range_hits: inner.range_hits,
        range_misses: inner.range_misses,
        range_entries: inner.ranges.len(),
    }
}

/// Memoized [`analyze_kernel`]: one analysis per distinct
/// `(function content, block_threads, extents)` in the process lifetime.
///
/// Concurrent first requests for the same key may both run the analysis;
/// the first insert wins and both count as misses — the analysis is pure,
/// so this only costs duplicated work, never divergent results.
pub fn analyze_kernel_memoized(
    f: &Function,
    spans: Option<&SpanTable>,
    opts: &AnalysisOptions,
) -> Arc<Vec<Diagnostic>> {
    let key = (
        function_content_hash(f),
        opts.block_threads,
        extents_fingerprint(opts.global_extents.as_deref()),
    );
    {
        let mut inner = cache().lock().expect("analysis cache poisoned");
        if let Some(cached) = inner.map.get(&key).map(Arc::clone) {
            inner.hits += 1;
            return cached;
        }
    }
    // Compute outside the lock: analysis can be expensive and is pure.
    let diags = Arc::new(analyze_kernel(f, spans, opts));
    let mut inner = cache().lock().expect("analysis cache poisoned");
    inner.misses += 1;
    Arc::clone(inner.map.entry(key).or_insert(diags))
}

/// Memoized [`summarize_ranges`]: one summary per distinct
/// `(function content, block_threads)` in the process lifetime.
pub fn summarize_ranges_memoized(
    f: &Function,
    block_threads: Option<u32>,
) -> Arc<KernelRangeSummary> {
    let key = (function_content_hash(f), block_threads);
    {
        let mut inner = cache().lock().expect("analysis cache poisoned");
        if let Some(cached) = inner.ranges.get(&key).map(Arc::clone) {
            inner.range_hits += 1;
            return cached;
        }
    }
    let summary = Arc::new(summarize_ranges(f, block_threads));
    let mut inner = cache().lock().expect("analysis cache poisoned");
    inner.range_misses += 1;
    Arc::clone(inner.ranges.entry(key).or_insert(summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel_with_spans;

    fn kernel(src: &str) -> (Function, SpanTable) {
        parse_kernel_with_spans(src).expect("parse")
    }

    #[test]
    fn second_analysis_of_same_content_hits() {
        // Unique kernel text so parallel tests can't pre-populate the key.
        let src = "__global__ void cache_probe_a(float* x) { x[threadIdx.x] = 61.0f; }";
        let (f, spans) = kernel(src);
        let opts = AnalysisOptions {
            block_threads: Some(64),
            ..AnalysisOptions::default()
        };
        let before = analysis_cache_stats();
        let first = analyze_kernel_memoized(&f, Some(&spans), &opts);
        let second = analyze_kernel_memoized(&f, Some(&spans), &opts);
        let after = analysis_cache_stats();
        assert!(Arc::ptr_eq(&first, &second), "second lookup shares the Arc");
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits - before.hits >= 1);
    }

    #[test]
    fn whitespace_reformat_shares_the_entry() {
        let a = kernel("__global__ void cache_probe_b(float* x) { x[threadIdx.x] = 62.0f; }").0;
        let b =
            kernel("__global__ void cache_probe_b(float* x) {\n    x[threadIdx.x]   =   62.0f;\n}")
                .0;
        assert_eq!(function_content_hash(&a), function_content_hash(&b));
    }

    #[test]
    fn block_threads_is_part_of_the_key() {
        let (f, _) = kernel("__global__ void cache_probe_c(float* x) { x[threadIdx.x] = 63.0f; }");
        let before = analysis_cache_stats();
        analyze_kernel_memoized(
            &f,
            None,
            &AnalysisOptions {
                block_threads: Some(128),
                ..AnalysisOptions::default()
            },
        );
        analyze_kernel_memoized(
            &f,
            None,
            &AnalysisOptions {
                block_threads: Some(256),
                ..AnalysisOptions::default()
            },
        );
        let after = analysis_cache_stats();
        assert_eq!(after.misses - before.misses, 2);
    }

    #[test]
    fn extents_are_part_of_the_key() {
        let (f, _) = kernel("__global__ void cache_probe_d(float* x) { x[threadIdx.x] = 64.0f; }");
        let mut ext = std::collections::BTreeMap::new();
        ext.insert("x".to_owned(), 64i64);
        let before = analysis_cache_stats();
        analyze_kernel_memoized(
            &f,
            None,
            &AnalysisOptions {
                block_threads: Some(64),
                ..AnalysisOptions::default()
            },
        );
        analyze_kernel_memoized(
            &f,
            None,
            &AnalysisOptions {
                block_threads: Some(64),
                global_extents: Some(Arc::new(ext)),
            },
        );
        let after = analysis_cache_stats();
        assert_eq!(after.misses - before.misses, 2);
    }

    #[test]
    fn range_summaries_are_memoized() {
        let (f, _) = kernel("__global__ void cache_probe_e(float* x) { x[threadIdx.x] = 65.0f; }");
        let before = analysis_cache_stats();
        let first = summarize_ranges_memoized(&f, Some(64));
        let second = summarize_ranges_memoized(&f, Some(64));
        let after = analysis_cache_stats();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(after.range_misses - before.range_misses, 1);
        assert!(after.range_hits - before.range_hits >= 1);
    }
}
