//! Process-wide memoization of [`analyze_kernel`].
//!
//! The static fusion-safety analysis runs in three places: the `hfuse
//! lint` CLI, the safety gate inside `horizontal_fuse`, and (through the
//! `Session` query layer in `hfuse-core`) the memoized `lints(k)` query.
//! Before this cache, a kernel linted by the CLI was re-analyzed from
//! scratch by the fuse gate in the same process, and every register-bound
//! sibling of a search candidate re-analyzed the identical fused function.
//! All three paths now share one table keyed by content: the FNV-1a hash
//! of the *printed* function (so whitespace and macro-expansion history
//! don't matter) plus the `block_threads` assumption the lints ran under.
//!
//! The first computation of a key wins and is shared verbatim — including
//! its span information. A caller that analyzes with a [`SpanTable`] after
//! someone already cached the span-less result receives the span-less
//! diagnostics (and vice versa); diagnostics differ only in source
//! positions, never in substance, so every consumer (the gate checks
//! emptiness, the CLI prints messages) stays correct.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cuda_frontend::ast::Function;
use cuda_frontend::diag::{Diagnostic, SpanTable};
use cuda_frontend::hash::fnv1a_64;
use cuda_frontend::printer::print_function;

use crate::{analyze_kernel, AnalysisOptions};

/// Content hash of a kernel: FNV-1a over the pretty-printed function.
/// Stable under reformatting of the original source, since the printer
/// canonicalizes layout.
#[must_use]
pub fn function_content_hash(f: &Function) -> u64 {
    fnv1a_64(print_function(f).as_bytes())
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<(u64, Option<u32>), Arc<Vec<Diagnostic>>>,
    hits: u64,
    misses: u64,
}

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CacheInner::default()))
}

/// Hit/miss counters of the process-wide analysis cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the analysis.
    pub misses: u64,
    /// Distinct `(function content, block_threads)` keys cached.
    pub entries: usize,
}

/// Snapshot of the cache counters. Tests assert on *deltas* of these, since
/// the cache is shared by every thread of the process.
#[must_use]
pub fn analysis_cache_stats() -> AnalysisCacheStats {
    let inner = cache().lock().expect("analysis cache poisoned");
    AnalysisCacheStats {
        hits: inner.hits,
        misses: inner.misses,
        entries: inner.map.len(),
    }
}

/// Memoized [`analyze_kernel`]: one analysis per distinct
/// `(function content, block_threads)` in the process lifetime.
///
/// Concurrent first requests for the same key may both run the analysis;
/// the first insert wins and both count as misses — the analysis is pure,
/// so this only costs duplicated work, never divergent results.
pub fn analyze_kernel_memoized(
    f: &Function,
    spans: Option<&SpanTable>,
    opts: &AnalysisOptions,
) -> Arc<Vec<Diagnostic>> {
    let key = (function_content_hash(f), opts.block_threads);
    {
        let mut inner = cache().lock().expect("analysis cache poisoned");
        if let Some(cached) = inner.map.get(&key).map(Arc::clone) {
            inner.hits += 1;
            return cached;
        }
    }
    // Compute outside the lock: analysis can be expensive and is pure.
    let diags = Arc::new(analyze_kernel(f, spans, opts));
    let mut inner = cache().lock().expect("analysis cache poisoned");
    inner.misses += 1;
    Arc::clone(inner.map.entry(key).or_insert(diags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel_with_spans;

    fn kernel(src: &str) -> (Function, SpanTable) {
        parse_kernel_with_spans(src).expect("parse")
    }

    #[test]
    fn second_analysis_of_same_content_hits() {
        // Unique kernel text so parallel tests can't pre-populate the key.
        let src = "__global__ void cache_probe_a(float* x) { x[threadIdx.x] = 61.0f; }";
        let (f, spans) = kernel(src);
        let opts = AnalysisOptions {
            block_threads: Some(64),
        };
        let before = analysis_cache_stats();
        let first = analyze_kernel_memoized(&f, Some(&spans), &opts);
        let second = analyze_kernel_memoized(&f, Some(&spans), &opts);
        let after = analysis_cache_stats();
        assert!(Arc::ptr_eq(&first, &second), "second lookup shares the Arc");
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits - before.hits >= 1);
    }

    #[test]
    fn whitespace_reformat_shares_the_entry() {
        let a = kernel("__global__ void cache_probe_b(float* x) { x[threadIdx.x] = 62.0f; }").0;
        let b =
            kernel("__global__ void cache_probe_b(float* x) {\n    x[threadIdx.x]   =   62.0f;\n}")
                .0;
        assert_eq!(function_content_hash(&a), function_content_hash(&b));
    }

    #[test]
    fn block_threads_is_part_of_the_key() {
        let (f, _) = kernel("__global__ void cache_probe_c(float* x) { x[threadIdx.x] = 63.0f; }");
        let before = analysis_cache_stats();
        analyze_kernel_memoized(
            &f,
            None,
            &AnalysisOptions {
                block_threads: Some(128),
            },
        );
        analyze_kernel_memoized(
            &f,
            None,
            &AnalysisOptions {
                block_threads: Some(256),
            },
        );
        let after = analysis_cache_stats();
        assert_eq!(after.misses - before.misses, 2);
    }
}
