//! Value-range abstract interpretation: intervals plus affine-in-`tid`/`bid`
//! forms for every scalar at every program point.
//!
//! The domain is a product of a classic integer interval lattice (with
//! `i64::MIN`/`i64::MAX` standing in for ∓∞) and an optional *exact* affine
//! form `t·τ + b·β + c` (τ = `threadIdx.x`, β = `blockIdx.x`). Loops are
//! handled with widening-to-infinity after a fixed number of in-state updates
//! followed by two narrowing passes; branch edges refine the interval of any
//! scalar compared against a computable bound.
//!
//! Three consumers sit on top:
//!
//! * [`oob_lints`] — *must*-style static out-of-bounds diagnostics for shared
//!   and global array accesses ([`CODE_SHARED_OOB`], [`CODE_GLOBAL_OOB`]).
//!   A diagnostic is only emitted when a thread that *definitely* executes
//!   the access realizes an index that is provably outside the array extent,
//!   so the lint stays silent on every well-formed kernel.
//! * [`eliminate_redundant_barriers`] — drops a `__syncthreads()` when every
//!   pair of accesses it separates is provably non-conflicting (different
//!   spaces, different arrays, disjoint index ranges, or no cross-warp
//!   overlapping thread pair). Used by the fusion pipeline before the two
//!   kernels' barrier structures are interleaved.
//! * [`summarize_ranges`] — a cheap per-kernel fact bundle
//!   ([`KernelRangeSummary`]) whose [`KernelRangeSummary::fast_gate_clean`]
//!   bit lets the fuse-time safety gate skip re-analyzing the fused function
//!   when both originals are already proven safe.
//!
//! Soundness assumptions, argued in DESIGN.md §15: signed-integer overflow is
//! undefined behavior in the source dialect (so arithmetic is modeled over
//! unbounded integers), and distinct global pointer parameters never alias
//! (the simulator launches every benchmark with distinct buffers).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use cuda_frontend::ast::{
    ArrayLen, AssignOp, Axis, BinOp, BuiltinVar, Expr, Function, Stmt, Ty, UnOp,
};
use cuda_frontend::diag::{Diagnostic, SpanTable};

use crate::cfg::{BasicBlock, BlockId, CStmtKind, Cfg, Term};
use crate::lints::{arrival_set, racing_pair_exists, uses_multidim_threads, Arrival, LintCtx};
use crate::uniformity::{eval, eval_pred, IntervalSet, Uniformity, UniformityAnalysis};

/// Diagnostic code for provable shared-memory out-of-bounds accesses.
pub const CODE_SHARED_OOB: &str = "shared-out-of-bounds";
/// Diagnostic code for provable global-memory out-of-bounds accesses.
pub const CODE_GLOBAL_OOB: &str = "global-out-of-bounds";

/// In-state updates a block tolerates before widening kicks in.
const WIDEN_AFTER: u32 = 3;

// ---------------------------------------------------------------------------
// The interval domain
// ---------------------------------------------------------------------------

/// An inclusive integer interval; `i64::MIN`/`i64::MAX` are ∓∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (`i64::MIN` = −∞).
    pub lo: i64,
    /// Upper bound (`i64::MAX` = +∞).
    pub hi: i64,
}

/// Extended-precision sentinel: anything at least this large is ±∞.
const INF: i128 = i128::MAX / 4;

fn ext(v: i64) -> i128 {
    match v {
        i64::MIN => -INF,
        i64::MAX => INF,
        v => i128::from(v),
    }
}

fn unext(v: i128) -> i64 {
    if v <= -(INF / 2) {
        i64::MIN
    } else if v >= INF / 2 {
        i64::MAX
    } else {
        v.clamp(i128::from(i64::MIN) + 1, i128::from(i64::MAX) - 1) as i64
    }
}

fn ext_mul(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    if a.abs() >= INF / 2 || b.abs() >= INF / 2 {
        return a.signum() * b.signum() * INF;
    }
    a * b
}

impl Interval {
    /// The full line (⊤).
    pub fn top() -> Interval {
        Interval {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// The singleton `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]` (callers must keep `lo <= hi`).
    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// True when no information is left.
    pub fn is_top(&self) -> bool {
        self.lo == i64::MIN && self.hi == i64::MAX
    }

    /// Least upper bound.
    pub fn join(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Greatest lower bound; `None` when the meet is empty.
    pub fn meet(&self, o: &Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Standard interval widening: any escaping bound jumps to ±∞.
    pub fn widen(&self, new: &Interval) -> Interval {
        Interval {
            lo: if new.lo < self.lo { i64::MIN } else { self.lo },
            hi: if new.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn add(&self, o: &Interval) -> Interval {
        Interval {
            lo: unext(ext(self.lo) + ext(o.lo)),
            hi: unext(ext(self.hi) + ext(o.hi)),
        }
    }

    fn sub(&self, o: &Interval) -> Interval {
        Interval {
            lo: unext(ext(self.lo) - ext(o.hi)),
            hi: unext(ext(self.hi) - ext(o.lo)),
        }
    }

    fn neg(&self) -> Interval {
        Interval {
            lo: unext(-ext(self.hi)),
            hi: unext(-ext(self.lo)),
        }
    }

    fn mul(&self, o: &Interval) -> Interval {
        let corners = [
            ext_mul(ext(self.lo), ext(o.lo)),
            ext_mul(ext(self.lo), ext(o.hi)),
            ext_mul(ext(self.hi), ext(o.lo)),
            ext_mul(ext(self.hi), ext(o.hi)),
        ];
        Interval {
            lo: unext(corners.iter().copied().min().unwrap()),
            hi: unext(corners.iter().copied().max().unwrap()),
        }
    }

    /// C truncating division; sound only for divisors strictly positive.
    fn div(&self, o: &Interval) -> Interval {
        if o.lo <= 0 {
            return Interval::top();
        }
        let q = |n: i64, d: i64| -> i128 {
            let (n, d) = (ext(n), ext(d));
            if n.abs() >= INF / 2 {
                // ±∞ / positive = ±∞ (d may itself be +∞: quotient sign is n's).
                n.signum() * INF
            } else if d >= INF / 2 {
                0
            } else {
                n / d
            }
        };
        let corners = [
            q(self.lo, o.lo),
            q(self.lo, o.hi),
            q(self.hi, o.lo),
            q(self.hi, o.hi),
        ];
        Interval {
            lo: unext(corners.iter().copied().min().unwrap()),
            hi: unext(corners.iter().copied().max().unwrap()),
        }
    }

    /// C truncating remainder by a strictly positive divisor.
    fn rem(&self, o: &Interval) -> Interval {
        if o.lo <= 0 {
            return Interval::top();
        }
        if o.hi == i64::MAX {
            // `x % m <= x` for non-negative x; nothing else is known.
            return if self.lo >= 0 {
                Interval::new(0, self.hi)
            } else {
                Interval::top()
            };
        }
        let mag = o.hi - 1;
        if self.lo >= 0 {
            Interval::new(0, self.hi.min(mag))
        } else {
            Interval::new(-mag, mag)
        }
    }
}

// ---------------------------------------------------------------------------
// The affine component and the product state
// ---------------------------------------------------------------------------

/// An exact affine form `t·τ + b·β + c` (τ = `threadIdx.x`, β = `blockIdx.x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineTB {
    /// Coefficient of `threadIdx.x`.
    pub t: i64,
    /// Coefficient of `blockIdx.x`.
    pub b: i64,
    /// Constant term.
    pub c: i64,
}

impl AffineTB {
    fn konst(c: i64) -> AffineTB {
        AffineTB { t: 0, b: 0, c }
    }

    fn is_const(&self) -> bool {
        self.t == 0 && self.b == 0
    }

    fn add(&self, o: &AffineTB) -> Option<AffineTB> {
        Some(AffineTB {
            t: self.t.checked_add(o.t)?,
            b: self.b.checked_add(o.b)?,
            c: self.c.checked_add(o.c)?,
        })
    }

    fn sub(&self, o: &AffineTB) -> Option<AffineTB> {
        Some(AffineTB {
            t: self.t.checked_sub(o.t)?,
            b: self.b.checked_sub(o.b)?,
            c: self.c.checked_sub(o.c)?,
        })
    }

    fn scale(&self, k: i64) -> Option<AffineTB> {
        Some(AffineTB {
            t: self.t.checked_mul(k)?,
            b: self.b.checked_mul(k)?,
            c: self.c.checked_mul(k)?,
        })
    }
}

/// One scalar's abstract value: an interval plus an optional exact affine form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsRange {
    /// Interval over-approximation of the value.
    pub iv: Interval,
    /// Exact affine form when the value is provably `t·τ + b·β + c`.
    pub aff: Option<AffineTB>,
}

impl AbsRange {
    /// No information.
    pub fn top() -> AbsRange {
        AbsRange {
            iv: Interval::top(),
            aff: None,
        }
    }

    fn konst(c: i64) -> AbsRange {
        AbsRange {
            iv: Interval::point(c),
            aff: Some(AffineTB::konst(c)),
        }
    }

    fn join(&self, o: &AbsRange) -> AbsRange {
        AbsRange {
            iv: self.iv.join(&o.iv),
            aff: match (self.aff, o.aff) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        }
    }
}

/// Per-program-point environment: scalar (or builtin pseudo-key) → value.
/// Builtins use dotted pseudo-keys (`threadIdx.x`) which cannot collide with
/// identifiers, so branch refinement can narrow them like any scalar.
pub type RState = HashMap<String, AbsRange>;

/// Evaluation context threaded through the interpreter.
struct Ev<'a> {
    /// `blockDim.x` when exactly known (1-D kernels with a known launch).
    bt: Option<u32>,
    /// Scalars whose address escapes; never tracked.
    taken: &'a HashSet<String>,
}

fn builtin_key(b: &BuiltinVar) -> &'static str {
    match b {
        BuiltinVar::ThreadIdx(Axis::X) => "threadIdx.x",
        BuiltinVar::ThreadIdx(Axis::Y) => "threadIdx.y",
        BuiltinVar::ThreadIdx(Axis::Z) => "threadIdx.z",
        BuiltinVar::BlockIdx(Axis::X) => "blockIdx.x",
        BuiltinVar::BlockIdx(Axis::Y) => "blockIdx.y",
        BuiltinVar::BlockIdx(Axis::Z) => "blockIdx.z",
        BuiltinVar::BlockDim(Axis::X) => "blockDim.x",
        BuiltinVar::BlockDim(Axis::Y) => "blockDim.y",
        BuiltinVar::BlockDim(Axis::Z) => "blockDim.z",
        BuiltinVar::GridDim(Axis::X) => "gridDim.x",
        BuiltinVar::GridDim(Axis::Y) => "gridDim.y",
        BuiltinVar::GridDim(Axis::Z) => "gridDim.z",
    }
}

fn builtin_default(b: &BuiltinVar, ev: &Ev) -> AbsRange {
    match b {
        BuiltinVar::ThreadIdx(Axis::X) => AbsRange {
            iv: Interval::new(0, ev.bt.map_or(1023, |t| i64::from(t) - 1)),
            aff: Some(AffineTB { t: 1, b: 0, c: 0 }),
        },
        BuiltinVar::ThreadIdx(_) => AbsRange {
            iv: Interval::new(0, 1023),
            aff: None,
        },
        BuiltinVar::BlockIdx(Axis::X) => AbsRange {
            iv: Interval::new(0, i64::MAX),
            aff: Some(AffineTB { t: 0, b: 1, c: 0 }),
        },
        BuiltinVar::BlockIdx(_) => AbsRange {
            iv: Interval::new(0, i64::MAX),
            aff: None,
        },
        BuiltinVar::BlockDim(Axis::X) => match ev.bt {
            Some(t) => AbsRange::konst(i64::from(t)),
            None => AbsRange {
                iv: Interval::new(1, 1024),
                aff: None,
            },
        },
        BuiltinVar::BlockDim(_) => AbsRange {
            iv: Interval::new(1, 1024),
            aff: None,
        },
        BuiltinVar::GridDim(_) => AbsRange {
            iv: Interval::new(1, i64::MAX),
            aff: None,
        },
    }
}

/// The key under which a condition operand can be refined: plain identifiers
/// and builtin pseudo-keys.
fn refine_key(e: &Expr) -> Option<String> {
    match e {
        Expr::Ident(n) => Some(n.clone()),
        Expr::Builtin(b) => Some(builtin_key(b).to_owned()),
        _ => None,
    }
}

fn bin_range(op: BinOp, a: &AbsRange, b: &AbsRange) -> AbsRange {
    let iv = match op {
        BinOp::Add => a.iv.add(&b.iv),
        BinOp::Sub => a.iv.sub(&b.iv),
        BinOp::Mul => a.iv.mul(&b.iv),
        BinOp::Div => a.iv.div(&b.iv),
        BinOp::Rem => a.iv.rem(&b.iv),
        BinOp::BitAnd => {
            // `x & m` with a non-negative constant mask lands in `[0, m]`
            // regardless of `x`'s sign (two's complement).
            let mask = [a, b].into_iter().find_map(|r| {
                let k = r.aff.filter(AffineTB::is_const)?.c;
                (k >= 0).then_some(k)
            });
            match mask {
                Some(m) => Interval::new(0, m),
                None => Interval::top(),
            }
        }
        op if op.is_comparison() || op.is_logical() => Interval::new(0, 1),
        _ => Interval::top(),
    };
    let aff = match op {
        BinOp::Add => a.aff.zip(b.aff).and_then(|(x, y)| x.add(&y)),
        BinOp::Sub => a.aff.zip(b.aff).and_then(|(x, y)| x.sub(&y)),
        BinOp::Mul => match (a.aff, b.aff) {
            (Some(x), Some(y)) if y.is_const() => x.scale(y.c),
            (Some(x), Some(y)) if x.is_const() => y.scale(x.c),
            _ => None,
        },
        _ => None,
    };
    AbsRange { iv, aff }
}

/// Evaluates `e` in `st`, applying assignment/inc-dec side effects.
fn ieval_mut(e: &Expr, st: &mut RState, ev: &Ev) -> AbsRange {
    match e {
        Expr::IntLit(v, _) => AbsRange::konst(*v),
        Expr::FloatLit(..) => AbsRange::top(),
        Expr::Ident(n) => st.get(n).copied().unwrap_or_else(AbsRange::top),
        Expr::Builtin(b) => st
            .get(builtin_key(b))
            .copied()
            .unwrap_or_else(|| builtin_default(b, ev)),
        Expr::Unary(op, a) => {
            let v = ieval_mut(a, st, ev);
            match op {
                UnOp::Neg => AbsRange {
                    iv: v.iv.neg(),
                    aff: v.aff.and_then(|x| x.scale(-1)),
                },
                UnOp::Not => AbsRange {
                    iv: Interval::new(0, 1),
                    aff: None,
                },
                UnOp::BitNot => AbsRange::top(),
            }
        }
        Expr::Binary(op, a, b) => {
            let va = ieval_mut(a, st, ev);
            let vb = ieval_mut(b, st, ev);
            bin_range(*op, &va, &vb)
        }
        Expr::Assign(op, lhs, rhs) => {
            let rv = ieval_mut(rhs, st, ev);
            let v = match op {
                AssignOp::Assign => rv,
                AssignOp::Compound(bop) => {
                    let cur = ieval_mut(lhs, st, ev);
                    bin_range(*bop, &cur, &rv)
                }
            };
            match lhs.as_ref() {
                Expr::Ident(n) => {
                    if ev.taken.contains(n) {
                        st.remove(n);
                    } else {
                        st.insert(n.clone(), v);
                    }
                }
                // A store through an index/deref changes no tracked scalar,
                // but its index subexpressions may carry side effects.
                Expr::Index(_, idx) => {
                    ieval_mut(idx, st, ev);
                }
                _ => {}
            }
            v
        }
        Expr::IncDec { inc, pre, target } => {
            let old = ieval_mut(target, st, ev);
            let one = AbsRange::konst(1);
            let new = bin_range(if *inc { BinOp::Add } else { BinOp::Sub }, &old, &one);
            if let Expr::Ident(n) = target.as_ref() {
                if ev.taken.contains(n) {
                    st.remove(n);
                } else {
                    st.insert(n.clone(), new);
                }
            }
            if *pre {
                new
            } else {
                old
            }
        }
        Expr::Ternary(c, a, b) => {
            ieval_mut(c, st, ev);
            let va = ieval_mut(a, st, ev);
            let vb = ieval_mut(b, st, ev);
            va.join(&vb)
        }
        Expr::Call(name, args) => {
            let vals: Vec<AbsRange> = args.iter().map(|a| ieval_mut(a, st, ev)).collect();
            match (name.as_str(), vals.as_slice()) {
                ("min", [a, b]) => AbsRange {
                    iv: Interval::new(a.iv.lo.min(b.iv.lo), a.iv.hi.min(b.iv.hi)),
                    aff: None,
                },
                ("max", [a, b]) => AbsRange {
                    iv: Interval::new(a.iv.lo.max(b.iv.lo), a.iv.hi.max(b.iv.hi)),
                    aff: None,
                },
                _ => AbsRange::top(),
            }
        }
        Expr::Cast(ty, a) => {
            let v = ieval_mut(a, st, ev);
            if ty.is_integer() {
                v
            } else {
                AbsRange::top()
            }
        }
        Expr::Index(base, idx) => {
            ieval_mut(base, st, ev);
            ieval_mut(idx, st, ev);
            AbsRange::top()
        }
        Expr::AddrOf(a) | Expr::Deref(a) => {
            ieval_mut(a, st, ev);
            AbsRange::top()
        }
    }
}

/// Side-effect-free evaluation (on a scratch clone when effects may occur).
fn ieval(e: &Expr, st: &RState, ev: &Ev) -> AbsRange {
    match e {
        // Fast paths for the common effect-free shapes.
        Expr::IntLit(v, _) => AbsRange::konst(*v),
        Expr::Ident(n) => st.get(n).copied().unwrap_or_else(AbsRange::top),
        Expr::Builtin(b) => st
            .get(builtin_key(b))
            .copied()
            .unwrap_or_else(|| builtin_default(b, ev)),
        _ => ieval_mut(e, &mut st.clone(), ev),
    }
}

// ---------------------------------------------------------------------------
// State lattice operations
// ---------------------------------------------------------------------------

fn join_states(a: &RState, b: &RState) -> RState {
    let mut out = RState::new();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            out.insert(k.clone(), va.join(vb));
        }
    }
    out
}

fn widen_states(old: &RState, new: &RState) -> RState {
    let mut out = RState::new();
    for (k, vo) in old {
        if let Some(vn) = new.get(k) {
            out.insert(
                k.clone(),
                AbsRange {
                    iv: vo.iv.widen(&vn.iv),
                    aff: match (vo.aff, vn.aff) {
                        (Some(x), Some(y)) if x == y => Some(x),
                        _ => None,
                    },
                },
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Branch-edge refinement
// ---------------------------------------------------------------------------

fn negate_cmp(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        _ => return None,
    })
}

fn swap_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Narrows `key` by `key <op> bound`; false means the edge is unreachable.
fn refine_var(st: &mut RState, key: &str, op: BinOp, bound: &Interval, ev: &Ev) -> bool {
    let constraint = match op {
        BinOp::Lt if bound.hi != i64::MAX => Interval::new(i64::MIN, bound.hi - 1),
        BinOp::Le => Interval::new(i64::MIN, bound.hi),
        BinOp::Gt if bound.lo != i64::MIN => Interval::new(bound.lo + 1, i64::MAX),
        BinOp::Ge => Interval::new(bound.lo, i64::MAX),
        BinOp::Eq => *bound,
        _ => return true,
    };
    let cur = match st.get(key) {
        Some(v) => *v,
        None => match key {
            // Builtins get their default range seeded so the meet sticks.
            "threadIdx.x" => builtin_default(&BuiltinVar::ThreadIdx(Axis::X), ev),
            "blockIdx.x" => builtin_default(&BuiltinVar::BlockIdx(Axis::X), ev),
            _ => AbsRange::top(),
        },
    };
    match cur.iv.meet(&constraint) {
        Some(iv) => {
            st.insert(key.to_owned(), AbsRange { iv, aff: cur.aff });
            true
        }
        None => false,
    }
}

/// Applies what `cond == polarity` implies to `st`; false = edge unreachable.
fn refine_cond(st: &mut RState, cond: &Expr, polarity: bool, ev: &Ev) -> bool {
    match cond {
        Expr::Unary(UnOp::Not, inner) => refine_cond(st, inner, !polarity, ev),
        Expr::Binary(BinOp::LogAnd, a, b) if polarity => {
            refine_cond(st, a, true, ev) && refine_cond(st, b, true, ev)
        }
        Expr::Binary(BinOp::LogOr, a, b) if !polarity => {
            refine_cond(st, a, false, ev) && refine_cond(st, b, false, ev)
        }
        Expr::Binary(op, a, b) if op.is_comparison() => {
            let op = if polarity {
                *op
            } else {
                match negate_cmp(*op) {
                    Some(o) => o,
                    None => return true,
                }
            };
            let mut live = true;
            if let Some(k) = refine_key(a) {
                let bound = ieval(b, st, ev).iv;
                live = refine_var(st, &k, op, &bound, ev);
            }
            if live {
                if let Some(k) = refine_key(b) {
                    let bound = ieval(a, st, ev).iv;
                    live = refine_var(st, &k, swap_cmp(op), &bound, ev);
                }
            }
            live
        }
        Expr::Ident(_) | Expr::Builtin(_) if !polarity => {
            let k = refine_key(cond).unwrap();
            refine_var(st, &k, BinOp::Eq, &Interval::point(0), ev)
        }
        Expr::IntLit(v, _) => (*v != 0) == polarity,
        _ => true,
    }
}

// ---------------------------------------------------------------------------
// The fixpoint driver
// ---------------------------------------------------------------------------

/// Per-block entry/exit range states for one kernel.
pub struct RangeAnalysis {
    /// State at each block's entry (`None` = unreachable).
    pub ins: Vec<Option<RState>>,
    /// State at each block's exit (`None` = unreachable).
    pub outs: Vec<Option<RState>>,
}

fn address_taken(f: &Function) -> HashSet<String> {
    fn walk_expr(e: &Expr, out: &mut HashSet<String>) {
        if let Expr::AddrOf(inner) = e {
            if let Expr::Ident(n) = inner.as_ref() {
                out.insert(n.clone());
            }
        }
        match e {
            Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::AddrOf(a) | Expr::Deref(a) => {
                walk_expr(a, out)
            }
            Expr::Binary(_, a, b) | Expr::Index(a, b) | Expr::Assign(_, a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            Expr::Ternary(a, b, c) => {
                walk_expr(a, out);
                walk_expr(b, out);
                walk_expr(c, out);
            }
            Expr::IncDec { target, .. } => walk_expr(target, out),
            Expr::Call(_, args) => args.iter().for_each(|a| walk_expr(a, out)),
            _ => {}
        }
    }
    let mut out = HashSet::new();
    cuda_frontend::diag::preorder_stmts(f, &mut |s| {
        for_stmt_exprs(s, &mut |e| walk_expr(e, &mut out));
    });
    out
}

fn for_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Decl(d) => {
            if let Some(init) = &d.init {
                f(init);
            }
        }
        Stmt::Expr(e) | Stmt::While(e, _) | Stmt::DoWhile(_, e) => f(e),
        Stmt::If(e, ..) => f(e),
        Stmt::For { cond, step, .. } => {
            if let Some(c) = cond {
                f(c);
            }
            if let Some(st) = step {
                f(st);
            }
        }
        Stmt::Switch { scrutinee, .. } => f(scrutinee),
        Stmt::Return(Some(e)) => f(e),
        _ => {}
    }
}

fn transfer_block(bb: &BasicBlock, mut st: RState, ev: &Ev) -> RState {
    for s in &bb.stmts {
        match &s.kind {
            CStmtKind::Decl(d) => {
                if d.array_len.is_some() || ev.taken.contains(&d.name) {
                    st.remove(&d.name);
                } else {
                    match &d.init {
                        Some(init) => {
                            let v = ieval_mut(init, &mut st, ev);
                            st.insert(d.name.clone(), v);
                        }
                        None => {
                            st.remove(&d.name);
                        }
                    }
                }
            }
            CStmtKind::Expr(e) => {
                ieval_mut(e, &mut st, ev);
            }
            CStmtKind::Sync | CStmtKind::BarSync { .. } => {}
        }
    }
    st
}

/// Successor edges with their refined states (`None` = unreachable edge).
fn edge_states(bb: &BasicBlock, out: &RState, ev: &Ev) -> Vec<(BlockId, Option<RState>)> {
    match &bb.term {
        Term::Jump(t) => vec![(*t, Some(out.clone()))],
        Term::Branch { cond, t, f, .. } => {
            let mk = |polarity: bool| {
                let mut st = out.clone();
                ieval_mut(cond, &mut st, ev);
                refine_cond(&mut st, cond, polarity, ev).then_some(st)
            };
            vec![(*t, mk(true)), (*f, mk(false))]
        }
        Term::Exit => Vec::new(),
    }
}

impl RangeAnalysis {
    /// Runs the interval/affine fixpoint over `cfg`.
    ///
    /// `block_threads` must be the exact `blockDim.x` — pass `None` for
    /// kernels using 2-D/3-D thread indexing (the caller checks), where the
    /// total block size says nothing about the x extent.
    pub fn run(cfg: &Cfg, f: &Function, block_threads: Option<u32>) -> RangeAnalysis {
        let taken = address_taken(f);
        let ev = Ev {
            bt: block_threads,
            taken: &taken,
        };
        let n = cfg.blocks.len();
        let mut ins: Vec<Option<RState>> = vec![None; n];
        let mut outs: Vec<Option<RState>> = vec![None; n];
        ins[0] = Some(RState::new());
        let mut updates = vec![0u32; n];
        let mut inq = vec![false; n];
        let mut work = VecDeque::from([0usize]);
        inq[0] = true;
        // Widening guarantees convergence; the counter is a belt-and-braces
        // bail against lattice bugs, never hit in practice.
        let mut fuel = 64 * n + 512;
        while let Some(b) = work.pop_front() {
            inq[b] = false;
            if fuel == 0 {
                break;
            }
            fuel -= 1;
            let Some(in_st) = ins[b].clone() else {
                continue;
            };
            let out = transfer_block(&cfg.blocks[b], in_st, &ev);
            if outs[b].as_ref() == Some(&out) {
                continue;
            }
            for (succ, edge) in edge_states(&cfg.blocks[b], &out, &ev) {
                let Some(edge) = edge else { continue };
                let merged = match &ins[succ] {
                    None => edge,
                    Some(old) => {
                        let j = join_states(old, &edge);
                        if updates[succ] >= WIDEN_AFTER {
                            widen_states(old, &j)
                        } else {
                            j
                        }
                    }
                };
                if ins[succ].as_ref() != Some(&merged) {
                    updates[succ] += 1;
                    ins[succ] = Some(merged);
                    if !inq[succ] {
                        inq[succ] = true;
                        work.push_back(succ);
                    }
                }
            }
            outs[b] = Some(out);
        }
        // Two narrowing passes: recompute entry states from the (sound)
        // post-fixpoint exits without widening, clawing back loop bounds
        // that guard refinement knows.
        let preds = cfg.preds();
        for _ in 0..2 {
            for b in 0..n {
                if let Some(in_st) = ins[b].clone() {
                    outs[b] = Some(transfer_block(&cfg.blocks[b], in_st, &ev));
                }
            }
            for b in 1..n {
                if ins[b].is_none() {
                    continue;
                }
                let mut acc: Option<RState> = None;
                for &p in &preds[b] {
                    let Some(out) = &outs[p] else { continue };
                    for (succ, edge) in edge_states(&cfg.blocks[p], out, &ev) {
                        if succ != b {
                            continue;
                        }
                        let Some(e) = edge else { continue };
                        acc = Some(match acc {
                            None => e,
                            Some(a) => join_states(&a, &e),
                        });
                    }
                }
                ins[b] = acc;
            }
        }
        for b in 0..n {
            outs[b] = ins[b]
                .clone()
                .map(|st| transfer_block(&cfg.blocks[b], st, &ev));
        }
        RangeAnalysis { ins, outs }
    }
}

// ---------------------------------------------------------------------------
// Access collection with pointer provenance
// ---------------------------------------------------------------------------

/// Where an access lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Place {
    /// A `__shared__` array, by name.
    Shared(String),
    /// A global pointer parameter, by name.
    Global(String),
    /// Unknown provenance — conflicts with everything.
    Wild,
}

/// One shared/global memory access with everything the consumers need.
#[derive(Debug, Clone)]
pub(crate) struct AccessFact {
    pub(crate) place: Place,
    pub(crate) write: bool,
    pub(crate) atomic: bool,
    pub(crate) block: BlockId,
    pub(crate) span_idx: Option<usize>,
    /// Element-index abstract value (⊤ for provenance-derived pointers).
    pub(crate) idx: AbsRange,
}

#[derive(Clone, PartialEq, Eq)]
enum Prov {
    Shared(String),
    Global(String),
    Wild,
}

struct ProvCtx {
    shared: HashSet<String>,
    params: HashSet<String>,
    ptr_locals: HashMap<String, Prov>,
}

impl ProvCtx {
    fn of_expr(&self, e: &Expr) -> Prov {
        match e {
            Expr::Ident(n) => {
                if self.shared.contains(n) {
                    Prov::Shared(n.clone())
                } else if self.params.contains(n) {
                    Prov::Global(n.clone())
                } else {
                    self.ptr_locals.get(n).cloned().unwrap_or(Prov::Wild)
                }
            }
            Expr::Cast(_, inner) => self.of_expr(inner),
            Expr::AddrOf(inner) => match inner.as_ref() {
                Expr::Index(base, _) => self.of_expr(base),
                Expr::Deref(p) => self.of_expr(p),
                _ => Prov::Wild,
            },
            Expr::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                let pa = self.of_expr(a);
                if pa != Prov::Wild {
                    pa
                } else {
                    self.of_expr(b)
                }
            }
            _ => Prov::Wild,
        }
    }
}

fn build_provenance(f: &Function) -> ProvCtx {
    let mut shared = HashSet::new();
    let mut ptr_decls: Vec<String> = Vec::new();
    cuda_frontend::diag::preorder_stmts(f, &mut |s| {
        if let Stmt::Decl(d) = s {
            if d.quals.shared || d.quals.extern_shared {
                shared.insert(d.name.clone());
            } else if matches!(d.ty, Ty::Ptr(_)) && d.array_len.is_none() {
                ptr_decls.push(d.name.clone());
            }
        }
    });
    let params: HashSet<String> = f
        .params
        .iter()
        .filter(|p| matches!(p.ty, Ty::Ptr(_)))
        .map(|p| p.name.clone())
        .collect();
    let mut ctx = ProvCtx {
        shared,
        params,
        ptr_locals: HashMap::new(),
    };
    // Flow-insensitive: merge every init/assignment a pointer local sees;
    // three rounds resolve chains (`p = q; r = p + 1`).
    let ptr_set: HashSet<String> = ptr_decls.into_iter().collect();
    for _ in 0..3 {
        let mut next = ctx.ptr_locals.clone();
        cuda_frontend::diag::preorder_stmts(f, &mut |s| {
            let mut merge = |name: &str, rhs: &Expr| {
                let p = ctx.of_expr(rhs);
                match next.get(name) {
                    None => {
                        next.insert(name.to_owned(), p);
                    }
                    Some(old) if *old != p => {
                        next.insert(name.to_owned(), Prov::Wild);
                    }
                    _ => {}
                }
            };
            match s {
                Stmt::Decl(d) if ptr_set.contains(&d.name) => {
                    if let Some(init) = &d.init {
                        merge(&d.name, init);
                    }
                }
                Stmt::Expr(Expr::Assign(AssignOp::Assign, lhs, rhs)) => {
                    if let Expr::Ident(n) = lhs.as_ref() {
                        if ptr_set.contains(n) {
                            merge(n, rhs);
                        }
                    }
                }
                _ => {}
            }
        });
        if next == ctx.ptr_locals {
            break;
        }
        ctx.ptr_locals = next;
    }
    ctx
}

struct AccessCollector<'a> {
    prov: &'a ProvCtx,
    ev: &'a Ev<'a>,
    block: BlockId,
    span_idx: Option<usize>,
    state: &'a RState,
    accesses: Vec<AccessFact>,
}

impl AccessCollector<'_> {
    fn place_of(&self, p: Prov) -> Option<Place> {
        match p {
            Prov::Shared(n) => Some(Place::Shared(n)),
            Prov::Global(n) => Some(Place::Global(n)),
            Prov::Wild => Some(Place::Wild),
        }
    }

    fn record(&mut self, base: &Expr, idx: Option<&Expr>, write: bool, atomic: bool) {
        let prov = self.prov.of_expr(base);
        // Direct `name[idx]` on a shared array or pointer param gets an exact
        // index; anything provenance-derived is ⊤ (the base offset is lost).
        let exact = matches!(
            (base, &prov),
            (Expr::Ident(_), Prov::Shared(_)) | (Expr::Ident(_), Prov::Global(_))
        );
        let idx = match (idx, exact) {
            (Some(e), true) => ieval(e, self.state, self.ev),
            _ => AbsRange::top(),
        };
        // Thread-private locals (non-pointer non-shared arrays) never reach
        // here: `of_expr` maps them to Wild, which is what we want only for
        // pointers — filter true locals out at the call sites instead.
        if let Some(place) = self.place_of(prov) {
            self.accesses.push(AccessFact {
                place,
                write,
                atomic,
                block: self.block,
                span_idx: self.span_idx,
                idx,
            });
        }
    }

    fn is_private_array(&self, base: &Expr) -> bool {
        // `name[...]` where name is neither shared, nor a pointer param, nor
        // a tracked pointer local: a thread-private local array. Private
        // memory can't race across threads; skip it entirely.
        if let Expr::Ident(n) = base {
            return !self.prov.shared.contains(n)
                && !self.prov.params.contains(n)
                && !self.prov.ptr_locals.contains_key(n);
        }
        false
    }

    fn walk(&mut self, e: &Expr) {
        match e {
            Expr::Assign(op, lhs, rhs) => {
                self.walk_store(lhs, matches!(op, AssignOp::Compound(_)));
                self.walk(rhs);
            }
            Expr::IncDec { target, .. } => self.walk_store(target, true),
            Expr::Index(base, idx) => {
                if !self.is_private_array(base) {
                    self.record(base, Some(idx), false, false);
                }
                self.walk(idx);
                if !matches!(base.as_ref(), Expr::Ident(_)) {
                    self.walk_pointer(base);
                }
            }
            Expr::Deref(inner) => {
                if !self.is_private_array(inner) {
                    self.record(inner, None, false, false);
                }
                self.walk_pointer(inner);
            }
            Expr::Call(name, args) => {
                let is_atomic = matches!(name.as_str(), "atomicAdd" | "atomicMax" | "atomicExch");
                let mut rest = &args[..];
                if is_atomic {
                    if let Some(Expr::AddrOf(inner)) = args.first() {
                        if let Expr::Index(base, idx) = inner.as_ref() {
                            if !self.is_private_array(base) {
                                self.record(base, Some(idx), true, true);
                            }
                            self.walk(idx);
                            rest = &args[1..];
                        }
                    }
                }
                for a in rest {
                    self.walk(a);
                }
            }
            Expr::AddrOf(inner) => {
                // An address escaping into a walked context (a call argument,
                // integer arithmetic): assume an unknown write through it.
                match inner.as_ref() {
                    Expr::Index(base, idx) => {
                        if !self.is_private_array(base) {
                            self.record(base, None, true, false);
                        }
                        self.walk(idx);
                    }
                    Expr::Ident(n) => {
                        if self.prov.shared.contains(n)
                            || self.prov.params.contains(n)
                            || self.prov.ptr_locals.contains_key(n)
                        {
                            self.record(inner, None, true, false);
                        }
                    }
                    other => self.walk(other),
                }
            }
            Expr::Ident(n) => {
                // A bare array/pointer name in a walked (non-provenance)
                // context has escaped: assume an unknown write.
                if self.prov.shared.contains(n)
                    || self.prov.ptr_locals.contains_key(n)
                    || self.prov.params.contains(n)
                {
                    self.record(e, None, true, false);
                }
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) => self.walk(a),
            Expr::Binary(_, a, b) => {
                self.walk(a);
                self.walk(b);
            }
            Expr::Ternary(a, b, c) => {
                self.walk(a);
                self.walk(b);
                self.walk(c);
            }
            Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Builtin(_) => {}
        }
    }

    fn walk_store(&mut self, lhs: &Expr, compound: bool) {
        let _ = compound; // a write subsumes the paired read for conflicts
        match lhs {
            Expr::Index(base, idx) => {
                if !self.is_private_array(base) {
                    self.record(base, Some(idx), true, false);
                }
                self.walk(idx);
                if !matches!(base.as_ref(), Expr::Ident(_)) {
                    self.walk_pointer(base);
                }
            }
            Expr::Deref(inner) => {
                if !self.is_private_array(inner) {
                    self.record(inner, None, true, false);
                }
                self.walk_pointer(inner);
            }
            _ => {} // scalar/pointer assignment: provenance handles it
        }
    }

    /// Walks a pointer-typed expression without letting bare array names
    /// count as escapes (the provenance map owns them); nested index
    /// expressions are still walked for accesses like `p[a[i]]`.
    fn walk_pointer(&mut self, e: &Expr) {
        match e {
            Expr::Ident(_) => {}
            Expr::Cast(_, inner) => self.walk_pointer(inner),
            Expr::AddrOf(inner) => match inner.as_ref() {
                Expr::Index(_, idx) => self.walk(idx),
                Expr::Deref(p) => self.walk_pointer(p),
                _ => {}
            },
            Expr::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                self.walk_pointer(a);
                // The non-pointer side is an ordinary scalar expression.
                if self.prov.of_expr(b) == Prov::Wild {
                    self.walk(b);
                } else {
                    self.walk_pointer(b);
                }
            }
            other => self.walk(other),
        }
    }
}

fn collect_accesses(cfg: &Cfg, f: &Function, ra: &RangeAnalysis, ev: &Ev) -> Vec<AccessFact> {
    let prov = build_provenance(f);
    let mut accesses = Vec::new();
    for (b, bb) in cfg.blocks.iter().enumerate() {
        let Some(in_state) = ra.ins[b].as_ref() else {
            continue;
        };
        let mut state = in_state.clone();
        for s in &bb.stmts {
            {
                let mut c = AccessCollector {
                    prov: &prov,
                    ev,
                    block: b,
                    span_idx: s.span_idx,
                    state: &state,
                    accesses: std::mem::take(&mut accesses),
                };
                match &s.kind {
                    CStmtKind::Decl(d) => {
                        if let Some(init) = &d.init {
                            if matches!(d.ty, Ty::Ptr(_)) {
                                c.walk_pointer(init);
                            } else {
                                c.walk(init);
                            }
                        }
                    }
                    CStmtKind::Expr(e) => {
                        // A whole-statement pointer assignment is provenance.
                        if let Expr::Assign(AssignOp::Assign, lhs, rhs) = e {
                            if let Expr::Ident(n) = lhs.as_ref() {
                                if prov.ptr_locals.contains_key(n) {
                                    c.walk_pointer(rhs);
                                } else {
                                    c.walk(e);
                                }
                            } else {
                                c.walk(e);
                            }
                        } else {
                            c.walk(e);
                        }
                    }
                    CStmtKind::Sync | CStmtKind::BarSync { .. } => {}
                }
                accesses = c.accesses;
            }
            // Advance the range state past this statement.
            let bb_one = BasicBlock {
                stmts: vec![s.clone()],
                term: Term::Exit,
            };
            state = transfer_block(&bb_one, state, ev);
        }
        if let Term::Branch { cond, span_idx, .. } = &bb.term {
            let mut c = AccessCollector {
                prov: &prov,
                ev,
                block: b,
                span_idx: *span_idx,
                state: &state,
                accesses: std::mem::take(&mut accesses),
            };
            c.walk(cond);
            accesses = c.accesses;
        }
    }
    accesses
}

// ---------------------------------------------------------------------------
// Definite arrival sets (under-approximation)
// ---------------------------------------------------------------------------

/// The set of τ that *definitely* execute `block`, or `None` when any
/// controlling condition is uniform (reachability, not divergence) or not
/// exactly parsable. Dual of [`arrival_set`]: that one over-approximates.
fn definite_arrival(
    cfg: &Cfg,
    ua: &UniformityAnalysis,
    block: BlockId,
    ctx: &LintCtx,
) -> Option<IntervalSet> {
    ua.ins[block].as_ref()?;
    let universe = ctx.universe();
    let mut set = IntervalSet::full(universe);
    for cd in &ua.cds[block] {
        let Term::Branch { cond, .. } = &cfg.blocks[cd.branch].term else {
            continue;
        };
        let st = ua.outs[cd.branch].as_ref()?;
        if eval(cond, st, ctx.block_threads).u == Uniformity::BlockUniform {
            // A uniform guard decides whether the block runs at all; we
            // cannot claim any thread definitely reaches it.
            return None;
        }
        let p = eval_pred(cond, st, universe, ctx.block_threads)?;
        let p = if cd.polarity {
            p
        } else {
            p.complement(universe)
        };
        set = set.intersect(&p);
    }
    Some(set)
}

// ---------------------------------------------------------------------------
// Consumer 1: static out-of-bounds lints
// ---------------------------------------------------------------------------

fn shared_extents(f: &Function, ev: &Ev) -> HashMap<String, i64> {
    let mut out = HashMap::new();
    cuda_frontend::diag::preorder_stmts(f, &mut |s| {
        if let Stmt::Decl(d) = s {
            if d.quals.shared {
                if let Some(ArrayLen::Fixed(len)) = &d.array_len {
                    let v = ieval(len, &RState::new(), ev);
                    if let Some(a) = v.aff.filter(AffineTB::is_const) {
                        if a.c > 0 {
                            out.insert(d.name.clone(), a.c);
                        }
                    }
                }
            }
        }
    });
    out
}

/// Claims built on arithmetic that left the 32-bit range could have wrapped
/// at runtime (the dialect's `int` is 32-bit); keep only claims whose
/// violating endpoint is itself representable.
fn sane32(v: i64) -> bool {
    i32::try_from(v).is_ok()
}

/// Runs the must-only out-of-bounds lint for shared and global accesses.
///
/// `global_extents` maps pointer-parameter names to their length *in
/// elements*; absent entries make global accesses unchecked.
pub fn oob_lints(
    cfg: &Cfg,
    ua: &UniformityAnalysis,
    f: &Function,
    spans: Option<&SpanTable>,
    ctx: &LintCtx,
    global_extents: Option<&BTreeMap<String, i64>>,
) -> Vec<Diagnostic> {
    // τ-based definite-arrival claims need 1-D indexing and a known width.
    if ctx.block_threads.is_none() || uses_multidim_threads(f) {
        return Vec::new();
    }
    let taken = address_taken(f);
    let ev = Ev {
        bt: ctx.block_threads,
        taken: &taken,
    };
    let ra = RangeAnalysis::run(cfg, f, ctx.block_threads);
    let accesses = collect_accesses(cfg, f, &ra, &ev);
    let s_ext = shared_extents(f, &ev);

    let mut definite: Vec<Option<Option<IntervalSet>>> = vec![None; cfg.blocks.len()];
    let mut out = Vec::new();
    let mut reported: HashSet<(&'static str, Option<usize>, String)> = HashSet::new();
    for a in &accesses {
        let (code, name, extent) = match &a.place {
            Place::Shared(n) => match s_ext.get(n) {
                Some(e) => (CODE_SHARED_OOB, n, *e),
                None => continue,
            },
            Place::Global(n) => match global_extents.and_then(|m| m.get(n)) {
                Some(e) => (CODE_GLOBAL_OOB, n, *e),
                None => continue,
            },
            Place::Wild => continue,
        };
        let def = definite[a.block]
            .get_or_insert_with(|| definite_arrival(cfg, ua, a.block, ctx))
            .clone();
        let Some(def) = def else { continue };
        if def.is_empty() {
            continue;
        }
        // Realized index extremes over the definitely-executing threads.
        let (lo, hi) = match a.idx.aff {
            Some(aff) if aff.b == 0 => {
                let at = |t: i64| aff.t.checked_mul(t).and_then(|v| v.checked_add(aff.c));
                match (def.min().and_then(at), def.max().and_then(at)) {
                    (Some(x), Some(y)) => (x.min(y), x.max(y)),
                    _ => continue,
                }
            }
            _ => {
                // Interval fallback: every possible value must be outside.
                (a.idx.iv.lo, a.idx.iv.hi)
            }
        };
        let exact = matches!(a.idx.aff, Some(aff) if aff.b == 0);
        let violation = if exact {
            // Affine: the extreme indices are actually realized.
            if hi >= extent && sane32(hi) {
                Some(format!("index {hi} (length {extent})"))
            } else if lo < 0 && sane32(lo) {
                Some(format!("index {lo}"))
            } else {
                None
            }
        } else if lo >= extent && sane32(lo) {
            // Range: out of bounds only if *all* values are.
            Some(format!("indices {lo}.. (length {extent})"))
        } else if hi < 0 && sane32(hi) {
            Some(format!("indices ..{hi}"))
        } else {
            None
        };
        let Some(what) = violation else { continue };
        if !reported.insert((code, a.span_idx, name.clone())) {
            continue;
        }
        let span = a.span_idx.and_then(|i| spans.and_then(|t| t.get(i)));
        let kind = if a.write { "write" } else { "read" };
        let space = if code == CODE_SHARED_OOB {
            "shared array"
        } else {
            "global buffer"
        };
        out.push(Diagnostic::new(
            cuda_frontend::diag::Severity::Error,
            code,
            span,
            format!(
                "out-of-bounds {kind} of {space} `{name}`: a thread that \
                 definitely executes this access uses {what}"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Consumer 2: redundant-barrier elimination
// ---------------------------------------------------------------------------

fn contains_goto(f: &Function) -> bool {
    let mut found = false;
    cuda_frontend::diag::preorder_stmts(f, &mut |s| {
        found |= matches!(s, Stmt::Goto(_) | Stmt::Label(_));
    });
    found
}

/// Block-pair phase concurrency, with `ignore` treated as not-a-barrier.
fn concurrency(cfg: &Cfg, ignore: Option<BlockId>) -> Vec<Vec<bool>> {
    let n = cfg.blocks.len();
    let is_bar = |b: BlockId| cfg.blocks[b].is_barrier() && Some(b) != ignore;
    let mut starts: Vec<BlockId> = vec![0];
    for b in 0..n {
        if is_bar(b) {
            starts.extend(cfg.blocks[b].term.succs());
        }
    }
    starts.sort_unstable();
    starts.dedup();
    let mut conc = vec![vec![false; n]; n];
    for &p in &starts {
        let mut seen = vec![false; n];
        let mut stack = vec![p];
        seen[p] = true;
        while let Some(b) = stack.pop() {
            if is_bar(b) && b != p {
                continue; // the phase ends at the next barrier
            }
            for s in cfg.blocks[b].term.succs() {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        let phase: Vec<BlockId> = (0..n).filter(|&b| seen[b]).collect();
        for &x in &phase {
            for &y in &phase {
                conc[x][y] = true;
            }
        }
    }
    conc
}

fn reaches_self(cfg: &Cfg, b: BlockId) -> bool {
    let mut seen = vec![false; cfg.blocks.len()];
    let mut stack: Vec<BlockId> = cfg.blocks[b].term.succs();
    while let Some(x) = stack.pop() {
        if x == b {
            return true;
        }
        if seen[x] {
            continue;
        }
        seen[x] = true;
        stack.extend(cfg.blocks[x].term.succs());
    }
    false
}

/// Whether two accesses may conflict if they become unsynchronized.
///
/// Safe verdicts: read/read, atomic/atomic, different shared arrays,
/// different global parameters (assumed non-aliasing, matching the
/// simulator's distinct-buffer launches), different spaces, provably
/// disjoint index ranges, or no cross-warp thread pair hitting the same
/// element (within one warp the min-PC scheduler preserves program order).
fn pair_safe(x: &AccessFact, y: &AccessFact, tsets: &[Option<IntervalSet>]) -> bool {
    if !x.write && !y.write {
        return true;
    }
    if x.atomic && y.atomic {
        return true;
    }
    match (&x.place, &y.place) {
        (Place::Wild, _) | (_, Place::Wild) => return false,
        (Place::Shared(a), Place::Shared(b)) if a != b => return true,
        (Place::Global(p), Place::Global(q)) if p != q => return true,
        (Place::Shared(_), Place::Global(_)) | (Place::Global(_), Place::Shared(_)) => {
            return true;
        }
        _ => {}
    }
    // Same array. Disjoint value ranges can never alias.
    if x.idx.iv.hi < y.idx.iv.lo || y.idx.iv.hi < x.idx.iv.lo {
        return true;
    }
    // Exact affine indices with matching blockIdx terms: conflict requires a
    // cross-warp thread pair on the same element (same-warp pairs execute in
    // program order under min-PC SIMT scheduling, so the barrier was not
    // ordering them anyway).
    if let (Some(a1), Some(a2)) = (x.idx.aff, y.idx.aff) {
        if a1.b == a2.b {
            if let (Some(s1), Some(s2)) = (&tsets[x.block], &tsets[y.block]) {
                if !racing_pair_exists((a1.t, a1.c), s1, (a2.t, a2.c), s2) {
                    return true;
                }
            }
        }
    }
    false
}

fn sync_rank_of_block(cfg: &Cfg, block: BlockId) -> Option<usize> {
    // Source-order rank of this block's `__syncthreads()` among all of them,
    // via the pre-order span indices the CFG builder records.
    let my_span = match cfg.blocks[block].stmts.first() {
        Some(s) if matches!(s.kind, CStmtKind::Sync) => s.span_idx?,
        _ => return None,
    };
    let mut spans: Vec<usize> = Vec::new();
    for bb in &cfg.blocks {
        for s in &bb.stmts {
            if matches!(s.kind, CStmtKind::Sync) {
                spans.push(s.span_idx?);
            }
        }
    }
    spans.sort_unstable();
    spans.iter().position(|&s| s == my_span)
}

// The guard form clippy suggests cannot take the `&mut` borrow the
// recursion needs (match guards only get shared borrows of bindings).
#[allow(clippy::collapsible_match)]
fn remove_nth_sync(stmts: &mut Vec<Stmt>, k: &mut usize, n: usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::SyncThreads => {
                if *k == n {
                    stmts.remove(i);
                    return true;
                }
                *k += 1;
            }
            Stmt::If(_, t, e) => {
                if remove_nth_sync(&mut t.stmts, k, n) {
                    return true;
                }
                if let Some(e) = e {
                    if remove_nth_sync(&mut e.stmts, k, n) {
                        return true;
                    }
                }
            }
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    let mut one = vec![std::mem::replace(init.as_mut(), Stmt::Break)];
                    let hit = remove_nth_sync(&mut one, k, n);
                    if let Some(s) = one.pop() {
                        **init = s;
                    }
                    if hit {
                        return true;
                    }
                }
                if remove_nth_sync(&mut body.stmts, k, n) {
                    return true;
                }
            }
            Stmt::While(_, body) | Stmt::DoWhile(body, _) => {
                if remove_nth_sync(&mut body.stmts, k, n) {
                    return true;
                }
            }
            Stmt::Switch { cases, .. } => {
                for case in cases.iter_mut() {
                    if remove_nth_sync(&mut case.body, k, n) {
                        return true;
                    }
                }
            }
            Stmt::Block(b) => {
                if remove_nth_sync(&mut b.stmts, k, n) {
                    return true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Removes every `__syncthreads()` the range analysis proves redundant.
///
/// A barrier is a candidate when it post-dominates entry and is not inside a
/// loop; it is removed when every pair of accesses that becomes concurrent
/// without it is proven conflict-free by `pair_safe`. Kernels containing
/// `goto` are left untouched (the same-warp program-order argument assumes
/// structured lowering). Returns the number of barriers removed.
pub fn eliminate_redundant_barriers(f: &mut Function, block_threads: Option<u32>) -> u32 {
    if contains_goto(f) {
        return 0;
    }
    let mut removed = 0;
    // Re-derive everything after each removal: merging two phases changes
    // every downstream concurrency fact.
    'outer: loop {
        let cfg = Cfg::build(f);
        let multidim = uses_multidim_threads(f);
        let taken = address_taken(f);
        let ev = Ev {
            bt: if multidim { None } else { block_threads },
            taken: &taken,
        };
        let ctx = LintCtx { block_threads };
        let ua = UniformityAnalysis::run(&cfg, f, ctx.block_threads);
        let ra = RangeAnalysis::run(&cfg, f, ev.bt);
        let accesses = collect_accesses(&cfg, f, &ra, &ev);
        // Over-approximate arrival sets feed the cross-warp refutation; with
        // multi-dimensional indexing τ identifies neither thread nor warp,
        // so the affine refutation is disabled (place/range facts remain).
        let tsets: Vec<Option<IntervalSet>> = (0..cfg.blocks.len())
            .map(|b| {
                if multidim {
                    return None;
                }
                match arrival_set(&cfg, &ua, b, &ctx) {
                    Arrival::Exact(s) => Some(s),
                    Arrival::Unknown => None,
                }
            })
            .collect();
        let pdom = cfg.postdominators();
        let conc_all = concurrency(&cfg, None);
        // `b` indexes `cfg.blocks`, `pdom`, and the concurrency tables alike.
        #[allow(clippy::needless_range_loop)]
        for b in 0..cfg.blocks.len() {
            let first_is_sync = matches!(
                cfg.blocks[b].stmts.first(),
                Some(s) if matches!(s.kind, CStmtKind::Sync)
            );
            // Only full-block barriers every thread crosses exactly once per
            // kernel run are candidates (no loops, no conditional arrival).
            if !first_is_sync || !pdom[0][b] || reaches_self(&cfg, b) {
                continue;
            }
            let conc_without = concurrency(&cfg, Some(b));
            let mut safe = true;
            'pairs: for (i, x) in accesses.iter().enumerate() {
                for y in &accesses[i..] {
                    let newly_concurrent =
                        conc_without[x.block][y.block] && !conc_all[x.block][y.block];
                    if newly_concurrent && !pair_safe(x, y, &tsets) {
                        safe = false;
                        break 'pairs;
                    }
                }
            }
            if !safe {
                continue;
            }
            let Some(rank) = sync_rank_of_block(&cfg, b) else {
                continue;
            };
            let mut k = 0;
            if remove_nth_sync(&mut f.body.stmts, &mut k, rank) {
                removed += 1;
                continue 'outer;
            }
        }
        break;
    }
    removed
}

// ---------------------------------------------------------------------------
// Consumer 3: per-kernel summaries for the fuse gate
// ---------------------------------------------------------------------------

/// Cheap per-kernel facts derived from the range analysis, memoized by the
/// `Session` query pipeline and consumed by the fuse-time safety gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRangeSummary {
    /// Number of `__syncthreads()`/`bar.sync` statements.
    pub barriers: u32,
    /// Uses 2-D/3-D thread indexing.
    pub multidim: bool,
    /// Contains `goto`/labels.
    pub has_goto: bool,
    /// Number of declared `__shared__` arrays.
    pub shared_arrays: u32,
    /// Shared/global accesses the collector recorded.
    pub accesses: u32,
    /// Accesses with no exact index (⊤ or provenance-derived).
    pub unresolved: u32,
    /// Every shared array is provably race-free (all-reads, all-atomic, or
    /// one identical injective affine index across all accesses).
    pub race_free_certain: bool,
    /// The out-of-bounds lint is silent at this block width.
    pub oob_clean: bool,
}

impl KernelRangeSummary {
    /// True when the fuse gate can accept a fusion involving this kernel
    /// without re-analyzing the fused function: no barriers to interleave,
    /// 1-D structured control flow, and a *proof* (not mere lint silence)
    /// that its shared arrays cannot race.
    pub fn fast_gate_clean(&self) -> bool {
        self.barriers == 0
            && !self.multidim
            && !self.has_goto
            && self.race_free_certain
            && self.oob_clean
    }
}

/// Computes the [`KernelRangeSummary`] for one kernel at one block width.
pub fn summarize_ranges(f: &Function, block_threads: Option<u32>) -> KernelRangeSummary {
    let cfg = Cfg::build(f);
    let multidim = uses_multidim_threads(f);
    let has_goto = contains_goto(f);
    let taken = address_taken(f);
    let ev = Ev {
        bt: if multidim { None } else { block_threads },
        taken: &taken,
    };
    let ra = RangeAnalysis::run(&cfg, f, ev.bt);
    let accesses = collect_accesses(&cfg, f, &ra, &ev);

    let mut barriers = 0u32;
    for bb in &cfg.blocks {
        for s in &bb.stmts {
            if matches!(s.kind, CStmtKind::Sync | CStmtKind::BarSync { .. }) {
                barriers += 1;
            }
        }
    }
    let mut shared: HashSet<String> = HashSet::new();
    cuda_frontend::diag::preorder_stmts(f, &mut |s| {
        if let Stmt::Decl(d) = s {
            if d.quals.shared || d.quals.extern_shared {
                shared.insert(d.name.clone());
            }
        }
    });

    let unresolved = accesses.iter().filter(|a| a.idx.aff.is_none()).count() as u32;
    let any_wild = accesses.iter().any(|a| a.place == Place::Wild);
    let race_free_certain = if multidim || has_goto {
        false
    } else if shared.is_empty() {
        // The race lint only looks at shared arrays.
        true
    } else if any_wild {
        false
    } else {
        shared.iter().all(|name| {
            let on_it: Vec<&AccessFact> = accesses
                .iter()
                .filter(|a| a.place == Place::Shared(name.clone()))
                .collect();
            let all_reads = on_it.iter().all(|a| !a.write);
            let all_atomic = !on_it.is_empty() && on_it.iter().all(|a| a.atomic);
            let identical_injective = match on_it.first().and_then(|a| a.idx.aff) {
                Some(first) if first.t != 0 => on_it.iter().all(|a| a.idx.aff == Some(first)),
                _ => false,
            };
            all_reads || all_atomic || identical_injective
        })
    };

    let oob_clean = if multidim || block_threads.is_none() {
        true
    } else {
        let ua = UniformityAnalysis::run(&cfg, f, block_threads);
        let ctx = LintCtx { block_threads };
        oob_lints(&cfg, &ua, f, None, &ctx, None).is_empty()
    };

    KernelRangeSummary {
        barriers,
        multidim,
        has_goto,
        shared_arrays: shared.len() as u32,
        accesses: accesses.len() as u32,
        unresolved,
        race_free_certain,
        oob_clean,
    }
}

/// Arc-wrapped [`summarize_ranges`] for the memoization layer.
pub fn summarize_ranges_arc(f: &Function, block_threads: Option<u32>) -> Arc<KernelRangeSummary> {
    Arc::new(summarize_ranges(f, block_threads))
}

/// Extents hash for cache keys: order-independent over `name=len` pairs.
pub fn extents_fingerprint(extents: Option<&BTreeMap<String, i64>>) -> u64 {
    let Some(m) = extents else { return 0 };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (k, v) in m {
        for byte in k.bytes().chain(b"=".iter().copied()) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= *v as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h | 1 // never collide with the "no extents" fingerprint 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel_with_spans;

    fn parsed(src: &str) -> (Function, SpanTable) {
        parse_kernel_with_spans(src).expect("test kernel parses")
    }

    fn lint(src: &str, threads: u32) -> Vec<Diagnostic> {
        let (f, spans) = parsed(src);
        let cfg = Cfg::build(&f);
        let ua = UniformityAnalysis::run(&cfg, &f, Some(threads));
        let ctx = LintCtx {
            block_threads: Some(threads),
        };
        oob_lints(&cfg, &ua, &f, Some(&spans), &ctx, None)
    }

    fn lint_with_extents(
        src: &str,
        threads: u32,
        extents: &BTreeMap<String, i64>,
    ) -> Vec<Diagnostic> {
        let (f, spans) = parsed(src);
        let cfg = Cfg::build(&f);
        let ua = UniformityAnalysis::run(&cfg, &f, Some(threads));
        let ctx = LintCtx {
            block_threads: Some(threads),
        };
        oob_lints(&cfg, &ua, &f, Some(&spans), &ctx, Some(extents))
    }

    #[test]
    fn interval_arithmetic_saturates() {
        let a = Interval::new(0, i64::MAX);
        let b = Interval::point(2);
        assert_eq!(a.mul(&b), Interval::new(0, i64::MAX));
        assert_eq!(
            Interval::new(-3, 5).mul(&Interval::point(-2)),
            Interval::new(-10, 6)
        );
        assert_eq!(
            Interval::new(0, 100).rem(&Interval::point(8)),
            Interval::new(0, 7)
        );
        assert_eq!(
            Interval::new(10, 100).div(&Interval::point(4)),
            Interval::new(2, 25)
        );
    }

    #[test]
    fn affine_tid_write_in_bounds_is_silent() {
        let src = "__global__ void k(int* out) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t] = t;\n\
                   out[t] = s[t];\n\
                   }";
        assert!(lint(src, 64).is_empty());
    }

    #[test]
    fn off_by_one_shared_write_is_caught() {
        let src = "__global__ void k(int* out) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t + 1] = t;\n\
                   out[t] = s[t];\n\
                   }";
        let diags = lint(src, 64);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, CODE_SHARED_OOB);
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn negative_index_is_caught() {
        let src = "__global__ void k(int* out) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t - 1] = t;\n\
                   out[t] = 0;\n\
                   }";
        let diags = lint(src, 64);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, CODE_SHARED_OOB);
    }

    #[test]
    fn guarded_access_is_silent() {
        let src = "__global__ void k(int* out) {\n\
                   __shared__ int s[32];\n\
                   int t = threadIdx.x;\n\
                   if (t < 31) { s[t + 1] = t; }\n\
                   out[t] = 0;\n\
                   }";
        assert!(lint(src, 64).is_empty());
    }

    #[test]
    fn clamped_index_stays_silent() {
        let src = "__global__ void k(int* out) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   int j = t + 9;\n\
                   if (j > 63) { j = 63; }\n\
                   if (j < 0) { j = 0; }\n\
                   s[j] = t;\n\
                   out[t] = 0;\n\
                   }";
        assert!(lint(src, 64).is_empty());
    }

    #[test]
    fn uniform_guard_suppresses_the_claim() {
        // The access is OOB, but it only runs when a uniform (unknown-value)
        // condition holds — a must lint cannot claim it executes.
        let src = "__global__ void k(int* out, int n) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   if (n > 0) { s[t + 64] = t; }\n\
                   out[t] = 0;\n\
                   }";
        assert!(lint(src, 64).is_empty());
    }

    #[test]
    fn global_extent_map_enables_global_oob() {
        let src = "__global__ void k(int* out) {\n\
                   int t = threadIdx.x;\n\
                   out[t + 64] = t;\n\
                   }";
        assert!(lint(src, 64).is_empty(), "no extents, no claim");
        let mut ext = BTreeMap::new();
        ext.insert("out".to_owned(), 64i64);
        let diags = lint_with_extents(src, 64, &ext);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, CODE_GLOBAL_OOB);
    }

    #[test]
    fn loop_widening_with_guard_narrowing_is_silent() {
        let src = "__global__ void k(int* out) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   int acc = 0;\n\
                   for (int i = 0; i < 64; i = i + 1) { acc = acc + s[i]; }\n\
                   out[t] = acc;\n\
                   }";
        assert!(lint(src, 64).is_empty());
    }

    #[test]
    fn loop_overrun_is_caught() {
        let src = "__global__ void k(int* out) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t * 2] = t;\n\
                   out[t] = 0;\n\
                   }";
        // t*2 realizes 126 at t=63 >= 64.
        let diags = lint(src, 64);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, CODE_SHARED_OOB);
    }

    #[test]
    fn trailing_barrier_before_global_writes_is_removed() {
        let src = "__global__ void k(int* out, int* in) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t] = in[t];\n\
                   __syncthreads();\n\
                   int v = s[63 - t];\n\
                   __syncthreads();\n\
                   out[t] = v;\n\
                   }";
        let (mut f, _) = parsed(src);
        let removed = eliminate_redundant_barriers(&mut f, Some(64));
        assert_eq!(removed, 1, "only the trailing barrier is redundant");
        let mut syncs = 0;
        cuda_frontend::diag::preorder_stmts(&f, &mut |s| {
            syncs += matches!(s, Stmt::SyncThreads) as u32;
        });
        assert_eq!(syncs, 1);
    }

    #[test]
    fn exchange_barrier_is_kept() {
        let src = "__global__ void k(int* out, int* in) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t] = in[t];\n\
                   __syncthreads();\n\
                   out[t] = s[63 - t];\n\
                   }";
        let (mut f, _) = parsed(src);
        assert_eq!(eliminate_redundant_barriers(&mut f, Some(64)), 0);
    }

    #[test]
    fn same_warp_exchange_barrier_is_removed() {
        // All shared traffic stays inside one warp: min-PC scheduling already
        // orders it, so the barrier buys nothing.
        let src = "__global__ void k(int* out, int* in) {\n\
                   __shared__ int s[32];\n\
                   int t = threadIdx.x;\n\
                   if (t < 32) { s[t] = in[t]; }\n\
                   __syncthreads();\n\
                   if (t < 32) { out[t] = s[31 - t]; }\n\
                   }";
        let (mut f, _) = parsed(src);
        assert_eq!(eliminate_redundant_barriers(&mut f, Some(64)), 1);
    }

    #[test]
    fn barrier_in_loop_is_never_touched() {
        let src = "__global__ void k(int* out, int* in) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   for (int i = 0; i < 4; i = i + 1) {\n\
                   s[t] = in[t] + i;\n\
                   __syncthreads();\n\
                   }\n\
                   out[t] = s[t];\n\
                   }";
        let (mut f, _) = parsed(src);
        assert_eq!(eliminate_redundant_barriers(&mut f, Some(64)), 0);
    }

    #[test]
    fn goto_kernels_are_left_alone() {
        let src = "__global__ void k(int* out) {\n\
                   int t = threadIdx.x;\n\
                   if (t >= 32) goto end;\n\
                   __syncthreads();\n\
                   label end:\n\
                   out[t] = t;\n\
                   }";
        if let Ok((mut f, _)) = parse_kernel_with_spans(src) {
            assert_eq!(eliminate_redundant_barriers(&mut f, Some(64)), 0);
        }
    }

    #[test]
    fn summary_fast_gate_on_clean_kernel() {
        let src = "__global__ void k(float* out, float* in, int n) {\n\
                   int t = threadIdx.x;\n\
                   int g = blockIdx.x * blockDim.x + t;\n\
                   if (g < n) { out[g] = in[g] * 2.0f; }\n\
                   }";
        let (f, _) = parsed(src);
        let s = summarize_ranges(&f, Some(128));
        assert!(s.fast_gate_clean(), "{s:?}");
        assert_eq!(s.barriers, 0);
        assert_eq!(s.shared_arrays, 0);
    }

    #[test]
    fn summary_rejects_barriered_kernel() {
        let src = "__global__ void k(int* out, int* in) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t] = in[t];\n\
                   __syncthreads();\n\
                   out[t] = s[63 - t];\n\
                   }";
        let (f, _) = parsed(src);
        let s = summarize_ranges(&f, Some(64));
        assert!(!s.fast_gate_clean());
        assert_eq!(s.barriers, 1);
        assert_eq!(s.shared_arrays, 1);
    }

    #[test]
    fn summary_identical_affine_shared_is_race_free() {
        let src = "__global__ void k(int* out, int* in) {\n\
                   __shared__ int s[64];\n\
                   int t = threadIdx.x;\n\
                   s[t] = in[t];\n\
                   out[t] = s[t] + 1;\n\
                   }";
        let (f, _) = parsed(src);
        let s = summarize_ranges(&f, Some(64));
        assert!(s.race_free_certain, "{s:?}");
        assert!(s.fast_gate_clean());
    }

    #[test]
    fn extents_fingerprint_distinguishes_maps() {
        let mut a = BTreeMap::new();
        a.insert("out".to_owned(), 64i64);
        let mut b = a.clone();
        b.insert("in".to_owned(), 128i64);
        assert_eq!(extents_fingerprint(None), 0);
        assert_ne!(extents_fingerprint(Some(&a)), 0);
        assert_ne!(extents_fingerprint(Some(&a)), extents_fingerprint(Some(&b)));
        let mut c = a.clone();
        c.insert("out".to_owned(), 65i64);
        assert_ne!(extents_fingerprint(Some(&a)), extents_fingerprint(Some(&c)));
    }
}
