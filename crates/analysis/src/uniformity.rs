//! Forward uniformity / divergence dataflow over the analysis CFG.
//!
//! Every scalar variable is tracked as a [`Fact`]: a uniformity level plus an
//! optional abstract value describing how the variable depends on
//! `threadIdx.x` (written τ below). The value lattice is deliberately tiny —
//! constants, affine functions `a·τ + b`, and C-truncated remainders
//! `(a·τ + b) % m` — because the lints built on top only ever claim something
//! when the dependence is *exactly* known. Anything else collapses to
//! "unknown", which downstream means "make no claim", never "report".
//!
//! Joins inject control-dependence divergence: a value merged from paths
//! selected by a divergent branch is divergent even if both sides wrote the
//! same *abstract* fact, unless the abstract value pins the concrete value as
//! a path-independent function of τ.

use std::collections::{HashMap, HashSet};

use cuda_frontend::ast::{AssignOp, BinOp, BuiltinVar, Expr, Function, Ty, UnOp};

use crate::cfg::{CStmtKind, Cfg, ControlDep, Term};

/// How a value varies across the threads of a block. Ordered by increasing
/// divergence, so `max` joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Uniformity {
    /// Identical across the whole thread block.
    BlockUniform,
    /// Identical within each warp (may differ across warps).
    WarpUniform,
    /// May differ between threads of the same warp.
    Divergent,
}

/// Abstract value of an integer variable as a function of τ = `threadIdx.x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// A compile-time constant.
    Const(i64),
    /// `a·τ + b`.
    Affine {
        /// Coefficient of τ.
        a: i64,
        /// Constant offset.
        b: i64,
    },
    /// `((a·τ + b) % m) + off` with C truncated-remainder semantics, `m > 0`.
    /// The post-modulo offset keeps shapes like `(tid % 64) + 32` — the
    /// shifted accesses fused kernels produce — exactly representable.
    TidMod {
        /// Coefficient of τ.
        a: i64,
        /// Constant offset inside the remainder.
        b: i64,
        /// Modulus.
        m: i64,
        /// Constant offset added after the remainder.
        off: i64,
    },
}

/// The dataflow fact for one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fact {
    /// Uniformity level.
    pub u: Uniformity,
    /// Abstract value, when exactly known.
    pub val: Option<AbsVal>,
}

impl Fact {
    /// A block-uniform fact with unknown value (parameters, block-level
    /// builtins).
    pub fn uniform() -> Fact {
        Fact {
            u: Uniformity::BlockUniform,
            val: None,
        }
    }

    /// A fully unknown, possibly divergent fact.
    pub fn divergent() -> Fact {
        Fact {
            u: Uniformity::Divergent,
            val: None,
        }
    }
}

/// Per-variable facts at a program point.
pub type State = HashMap<String, Fact>;

fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Evaluates `e` in `st`, applying side effects (assignments, `++`/`--`) to
/// the state. `block_dim_x` is `blockDim.x` when known.
pub fn eval_mut(e: &Expr, st: &mut State, block_dim_x: Option<u32>) -> Fact {
    match e {
        Expr::IntLit(v, _) => Fact {
            u: Uniformity::BlockUniform,
            val: Some(AbsVal::Const(*v)),
        },
        Expr::FloatLit(..) => Fact::uniform(),
        Expr::Ident(n) => st.get(n).copied().unwrap_or_else(Fact::divergent),
        Expr::Builtin(b) => match b {
            BuiltinVar::ThreadIdx(a) => {
                if *a == cuda_frontend::ast::Axis::X {
                    Fact {
                        u: Uniformity::Divergent,
                        val: Some(AbsVal::Affine { a: 1, b: 0 }),
                    }
                } else {
                    Fact::divergent()
                }
            }
            BuiltinVar::BlockDim(a) => {
                if *a == cuda_frontend::ast::Axis::X {
                    Fact {
                        u: Uniformity::BlockUniform,
                        val: block_dim_x.map(|v| AbsVal::Const(v as i64)),
                    }
                } else {
                    Fact::uniform()
                }
            }
            BuiltinVar::BlockIdx(_) | BuiltinVar::GridDim(_) => Fact::uniform(),
        },
        Expr::Unary(op, inner) => {
            let f = eval_mut(inner, st, block_dim_x);
            let val = match (op, f.val) {
                (UnOp::Neg, Some(AbsVal::Const(v))) => Some(AbsVal::Const(v.wrapping_neg())),
                (UnOp::Neg, Some(AbsVal::Affine { a, b })) => a
                    .checked_neg()
                    .zip(b.checked_neg())
                    .map(|(a, b)| AbsVal::Affine { a, b }),
                (UnOp::Not, Some(AbsVal::Const(v))) => Some(AbsVal::Const(i64::from(v == 0))),
                (UnOp::BitNot, Some(AbsVal::Const(v))) => Some(AbsVal::Const(!v)),
                _ => None,
            };
            Fact { u: f.u, val }
        }
        Expr::Binary(op, a, b) => {
            let fa = eval_mut(a, st, block_dim_x);
            let fb = eval_mut(b, st, block_dim_x);
            bin_fact(*op, fa, fb)
        }
        Expr::Assign(op, lhs, rhs) => {
            let stored = match op {
                AssignOp::Assign => eval_mut(rhs, st, block_dim_x),
                AssignOp::Compound(bop) => {
                    let old = if let Expr::Ident(n) = lhs.as_ref() {
                        st.get(n).copied().unwrap_or_else(Fact::divergent)
                    } else {
                        Fact::divergent()
                    };
                    let rf = eval_mut(rhs, st, block_dim_x);
                    bin_fact(*bop, old, rf)
                }
            };
            match lhs.as_ref() {
                Expr::Ident(n) => {
                    st.insert(n.clone(), stored);
                }
                other => {
                    // Memory store: evaluate address subexpressions for their
                    // side effects only.
                    eval_mut(other, st, block_dim_x);
                }
            }
            stored
        }
        Expr::IncDec { inc, pre, target } => {
            if let Expr::Ident(n) = target.as_ref() {
                let old = st.get(n).copied().unwrap_or_else(Fact::divergent);
                let one = Fact {
                    u: Uniformity::BlockUniform,
                    val: Some(AbsVal::Const(1)),
                };
                let new = bin_fact(if *inc { BinOp::Add } else { BinOp::Sub }, old, one);
                st.insert(n.clone(), new);
                if *pre {
                    new
                } else {
                    old
                }
            } else {
                eval_mut(target, st, block_dim_x);
                Fact::divergent()
            }
        }
        Expr::Ternary(c, t, e2) => {
            let fc = eval_mut(c, st, block_dim_x);
            // Evaluate both arms on clones so a side effect from the arm a
            // thread did not take cannot sharpen its fact.
            let mut st_t = st.clone();
            let mut st_e = st.clone();
            let ft = eval_mut(t, &mut st_t, block_dim_x);
            let fe = eval_mut(e2, &mut st_e, block_dim_x);
            merge_ternary_states(st, &st_t, &st_e, fc.u);
            let val = match fc.val {
                Some(AbsVal::Const(v)) => {
                    if v != 0 {
                        ft.val
                    } else {
                        fe.val
                    }
                }
                _ => None,
            };
            Fact {
                u: fc.u.max(ft.u).max(fe.u),
                val,
            }
        }
        Expr::Call(name, args) => {
            let mut arg_u = Uniformity::BlockUniform;
            for a in args {
                arg_u = arg_u.max(eval_mut(a, st, block_dim_x).u);
            }
            let base = name.trim_end_matches("_sync");
            match base {
                "__ballot" | "__any" | "__all" => Fact {
                    u: Uniformity::WarpUniform,
                    val: None,
                },
                "min" | "max" | "fminf" | "fmaxf" | "fabsf" | "sqrtf" | "rsqrtf" | "expf"
                | "logf" | "__popc" | "__clz" | "__brev" => Fact {
                    u: arg_u,
                    val: None,
                },
                _ => Fact::divergent(),
            }
        }
        Expr::Index(base, idx) => {
            eval_mut(base, st, block_dim_x);
            eval_mut(idx, st, block_dim_x);
            Fact::divergent()
        }
        Expr::Cast(ty, inner) => {
            let f = eval_mut(inner, st, block_dim_x);
            if ty.is_integer() && *ty != Ty::Bool {
                f
            } else {
                Fact { u: f.u, val: None }
            }
        }
        Expr::AddrOf(inner) => {
            let f = eval_mut(inner, st, block_dim_x);
            Fact { u: f.u, val: None }
        }
        Expr::Deref(inner) => {
            eval_mut(inner, st, block_dim_x);
            Fact::divergent()
        }
    }
}

/// Evaluates `e` without mutating `st`.
pub fn eval(e: &Expr, st: &State, block_dim_x: Option<u32>) -> Fact {
    let mut tmp = st.clone();
    eval_mut(e, &mut tmp, block_dim_x)
}

fn merge_ternary_states(st: &mut State, st_t: &State, st_e: &State, cond_u: Uniformity) {
    let keys: Vec<String> = st_t.keys().chain(st_e.keys()).cloned().collect();
    for k in keys {
        match (st_t.get(&k), st_e.get(&k)) {
            (Some(a), Some(b)) if a == b && a.val.is_some() => {
                st.insert(k, *a);
            }
            (Some(a), Some(b)) => {
                st.insert(
                    k,
                    Fact {
                        u: a.u.max(b.u).max(cond_u),
                        val: None,
                    },
                );
            }
            _ => {
                st.remove(&k);
            }
        }
    }
}

/// Combines two facts through a binary operator.
pub fn bin_fact(op: BinOp, fa: Fact, fb: Fact) -> Fact {
    let mut u = fa.u.max(fb.u);
    let val = abs_bin(op, fa.val, fb.val);
    // `τ / c` and `τ >> k` with a warp-multiple divisor yield the same value
    // for every lane of a warp.
    if val.is_none() {
        let warp_div = match (op, fa.val, fb.val) {
            (BinOp::Div, Some(AbsVal::Affine { a: 1, b: 0 }), Some(AbsVal::Const(c))) => {
                c > 0 && c % 32 == 0
            }
            (BinOp::Shr, Some(AbsVal::Affine { a: 1, b: 0 }), Some(AbsVal::Const(k))) => {
                (5..63).contains(&k)
            }
            _ => false,
        };
        if warp_div {
            u = u.min(Uniformity::WarpUniform).max(fb.u);
        }
    }
    Fact { u, val }
}

fn abs_bin(op: BinOp, va: Option<AbsVal>, vb: Option<AbsVal>) -> Option<AbsVal> {
    use AbsVal::{Affine, Const, TidMod};
    let (va, vb) = (va?, vb?);
    // Normalise constants to degenerate affine forms for the linear ops.
    let lin = |v: AbsVal| match v {
        Const(c) => Some((0i64, c)),
        Affine { a, b } => Some((a, b)),
        TidMod { .. } => None,
    };
    match op {
        BinOp::Add => match (va, vb) {
            // A constant slides into the post-modulo offset; a τ-term can't.
            (TidMod { a, b, m, off }, other) | (other, TidMod { a, b, m, off }) => {
                match lin(other)? {
                    (0, c) => Some(TidMod {
                        a,
                        b,
                        m,
                        off: off.checked_add(c)?,
                    }),
                    _ => None,
                }
            }
            _ => {
                let (a1, b1) = lin(va)?;
                let (a2, b2) = lin(vb)?;
                mk_affine(a1.checked_add(a2)?, b1.checked_add(b2)?)
            }
        },
        BinOp::Sub => match (va, vb) {
            (TidMod { a, b, m, off }, other) => match lin(other)? {
                (0, c) => Some(TidMod {
                    a,
                    b,
                    m,
                    off: off.checked_sub(c)?,
                }),
                _ => None,
            },
            (_, TidMod { .. }) => None,
            _ => {
                let (a1, b1) = lin(va)?;
                let (a2, b2) = lin(vb)?;
                mk_affine(a1.checked_sub(a2)?, b1.checked_sub(b2)?)
            }
        },
        BinOp::Mul => match (va, vb) {
            (Const(c), other) | (other, Const(c)) => {
                let (a, b) = lin(other)?;
                mk_affine(a.checked_mul(c)?, b.checked_mul(c)?)
            }
            _ => None,
        },
        BinOp::Div => match (va, vb) {
            (Const(x), Const(c)) if c != 0 => Some(Const(x / c)),
            (Affine { a, b }, Const(c)) if c > 0 && a % c == 0 && b % c == 0 => {
                mk_affine(a / c, b / c)
            }
            _ => None,
        },
        BinOp::Rem => match (va, vb) {
            (Const(x), Const(c)) if c != 0 => Some(Const(x % c)),
            (Affine { a, b }, Const(m)) if m > 0 => Some(TidMod { a, b, m, off: 0 }),
            // `(x % m) % m == x % m` only without a post-modulo offset.
            (TidMod { a, b, m, off: 0 }, Const(c)) if c == m => Some(TidMod { a, b, m, off: 0 }),
            _ => None,
        },
        BinOp::Shl => match (va, vb) {
            (Const(x), Const(k)) if (0..63).contains(&k) => x.checked_shl(k as u32).map(Const),
            (Affine { a, b }, Const(k)) if (0..31).contains(&k) => {
                mk_affine(a.checked_shl(k as u32)?, b.checked_shl(k as u32)?)
            }
            _ => None,
        },
        BinOp::Shr => match (va, vb) {
            (Const(x), Const(k)) if (0..63).contains(&k) => Some(Const(x >> k)),
            (Affine { a, b }, Const(k)) if (0..31).contains(&k) => {
                let d = 1i64 << k;
                if a >= 0 && b >= 0 && a % d == 0 && b % d == 0 {
                    mk_affine(a / d, b / d)
                } else {
                    None
                }
            }
            _ => None,
        },
        BinOp::BitAnd => match (va, vb) {
            (Const(x), Const(y)) => Some(Const(x & y)),
            (Affine { a, b }, Const(mask)) | (Const(mask), Affine { a, b })
                if mask > 0 && ((mask + 1) as u64).is_power_of_two() && a >= 0 && b >= 0 =>
            {
                Some(TidMod {
                    a,
                    b,
                    m: mask + 1,
                    off: 0,
                })
            }
            _ => None,
        },
        BinOp::BitOr => match (va, vb) {
            (Const(x), Const(y)) => Some(Const(x | y)),
            _ => None,
        },
        BinOp::BitXor => match (va, vb) {
            (Const(x), Const(y)) => Some(Const(x ^ y)),
            _ => None,
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => match (va, vb) {
            (Const(x), Const(y)) => Some(Const(i64::from(match op {
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                BinOp::Eq => x == y,
                _ => x != y,
            }))),
            _ => None,
        },
        BinOp::LogAnd | BinOp::LogOr => match (va, vb) {
            (Const(x), Const(y)) => Some(Const(i64::from(if op == BinOp::LogAnd {
                x != 0 && y != 0
            } else {
                x != 0 || y != 0
            }))),
            _ => None,
        },
    }
}

fn mk_affine(a: i64, b: i64) -> Option<AbsVal> {
    if a == 0 {
        Some(AbsVal::Const(b))
    } else {
        Some(AbsVal::Affine { a, b })
    }
}

// ---------------------------------------------------------------------------
// Interval sets over τ
// ---------------------------------------------------------------------------

/// A finite union of disjoint half-open intervals of thread ids, always a
/// subset of `[0, universe)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSet {
    ivs: Vec<(i64, i64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> IntervalSet {
        IntervalSet { ivs: Vec::new() }
    }

    /// All of `[0, universe)`.
    pub fn full(universe: i64) -> IntervalSet {
        IntervalSet::range(0, universe, universe)
    }

    /// `[lo, hi)` clamped to `[0, universe)`.
    pub fn range(lo: i64, hi: i64, universe: i64) -> IntervalSet {
        let lo = lo.max(0);
        let hi = hi.min(universe);
        if lo >= hi {
            IntervalSet::empty()
        } else {
            IntervalSet {
                ivs: vec![(lo, hi)],
            }
        }
    }

    /// The singleton `{t}`, if in range.
    pub fn point(t: i64, universe: i64) -> IntervalSet {
        IntervalSet::range(t, t + 1, universe)
    }

    fn normalize(mut ivs: Vec<(i64, i64)>) -> IntervalSet {
        ivs.retain(|&(l, h)| l < h);
        ivs.sort_unstable();
        let mut out: Vec<(i64, i64)> = Vec::with_capacity(ivs.len());
        for (l, h) in ivs {
            if let Some(last) = out.last_mut() {
                if l <= last.1 {
                    last.1 = last.1.max(h);
                    continue;
                }
            }
            out.push((l, h));
        }
        IntervalSet { ivs: out }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut ivs = self.ivs.clone();
        ivs.extend_from_slice(&other.ivs);
        IntervalSet::normalize(ivs)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for &(l1, h1) in &self.ivs {
            for &(l2, h2) in &other.ivs {
                let l = l1.max(l2);
                let h = h1.min(h2);
                if l < h {
                    out.push((l, h));
                }
            }
        }
        IntervalSet::normalize(out)
    }

    /// `[0, universe) \ self`.
    pub fn complement(&self, universe: i64) -> IntervalSet {
        let mut out = Vec::new();
        let mut cursor = 0;
        for &(l, h) in &self.ivs {
            if cursor < l {
                out.push((cursor, l));
            }
            cursor = cursor.max(h);
        }
        if cursor < universe {
            out.push((cursor, universe));
        }
        IntervalSet::normalize(out)
    }

    /// True when no thread is in the set.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// True when the set is exactly `[0, universe)`.
    pub fn is_full(&self, universe: i64) -> bool {
        self.ivs == [(0, universe)]
    }

    /// Number of threads in the set.
    pub fn count(&self) -> i64 {
        self.ivs.iter().map(|&(l, h)| h - l).sum()
    }

    /// Membership test.
    pub fn contains(&self, t: i64) -> bool {
        self.ivs.iter().any(|&(l, h)| l <= t && t < h)
    }

    /// Smallest member.
    pub fn min(&self) -> Option<i64> {
        self.ivs.first().map(|&(l, _)| l)
    }

    /// Largest member.
    pub fn max(&self) -> Option<i64> {
        self.ivs.last().map(|&(_, h)| h - 1)
    }

    /// Iterates over every member.
    pub fn members(&self) -> impl Iterator<Item = i64> + '_ {
        self.ivs.iter().flat_map(|&(l, h)| l..h)
    }

    /// True when the set is warp-aligned: every warp is either fully in or
    /// fully out of the set.
    pub fn is_warp_aligned(&self) -> bool {
        self.ivs.iter().all(|&(l, h)| l % 32 == 0 && h % 32 == 0)
    }
}

/// Parses a branch condition into the exact set of thread ids satisfying it,
/// given the variable facts in force at the branch. Returns `None` whenever
/// the set cannot be pinned down exactly.
pub fn eval_pred(
    e: &Expr,
    st: &State,
    universe: i64,
    block_dim_x: Option<u32>,
) -> Option<IntervalSet> {
    match e {
        Expr::IntLit(v, _) => Some(if *v != 0 {
            IntervalSet::full(universe)
        } else {
            IntervalSet::empty()
        }),
        Expr::Unary(UnOp::Not, inner) => {
            Some(eval_pred(inner, st, universe, block_dim_x)?.complement(universe))
        }
        Expr::Binary(BinOp::LogAnd, l, r) => {
            let pl = eval_pred(l, st, universe, block_dim_x)?;
            let pr = eval_pred(r, st, universe, block_dim_x)?;
            Some(pl.intersect(&pr))
        }
        Expr::Binary(BinOp::LogOr, l, r) => {
            let pl = eval_pred(l, st, universe, block_dim_x)?;
            let pr = eval_pred(r, st, universe, block_dim_x)?;
            Some(pl.union(&pr))
        }
        Expr::Binary(op, l, r) if op.is_comparison() => {
            let vl = eval(l, st, block_dim_x).val?;
            let vr = eval(r, st, block_dim_x).val?;
            match (vl, vr) {
                (AbsVal::Const(x), AbsVal::Const(y)) => {
                    let hold = match op {
                        BinOp::Lt => x < y,
                        BinOp::Le => x <= y,
                        BinOp::Gt => x > y,
                        BinOp::Ge => x >= y,
                        BinOp::Eq => x == y,
                        _ => x != y,
                    };
                    Some(if hold {
                        IntervalSet::full(universe)
                    } else {
                        IntervalSet::empty()
                    })
                }
                (AbsVal::Affine { a, b }, AbsVal::Const(c)) => {
                    Some(solve_affine(a, b, *op, c, universe))
                }
                (AbsVal::Const(c), AbsVal::Affine { a, b }) => {
                    Some(solve_affine(a, b, flip_cmp(*op), c, universe))
                }
                (AbsVal::TidMod { a, b, m, off }, AbsVal::Const(c)) => {
                    Some(solve_tidmod(a, b, m, off, *op, c, universe))
                }
                (AbsVal::Const(c), AbsVal::TidMod { a, b, m, off }) => {
                    Some(solve_tidmod(a, b, m, off, flip_cmp(*op), c, universe))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Mirror of a comparison under operand swap: `c OP x` ⇔ `x flip(OP) c`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Solves `((a·τ + b) % m) + off OP c` for τ over `[0, universe)` by direct
/// enumeration: the satisfying set is periodic with no closed interval
/// form, and the universe is at most one block (≤ 1024 threads), so
/// pointwise evaluation is exact and cheap. `%` is C truncated remainder,
/// which `i64::%` matches.
#[allow(clippy::too_many_arguments)]
fn solve_tidmod(a: i64, b: i64, m: i64, off: i64, op: BinOp, c: i64, universe: i64) -> IntervalSet {
    debug_assert!(m > 0);
    let mut set = IntervalSet::empty();
    let mut run: Option<(i64, i64)> = None;
    let c = c as i128;
    for tau in 0..universe {
        let v = (a as i128 * tau as i128 + b as i128) % m as i128 + off as i128;
        let hold = match op {
            BinOp::Lt => v < c,
            BinOp::Le => v <= c,
            BinOp::Gt => v > c,
            BinOp::Ge => v >= c,
            BinOp::Eq => v == c,
            _ => v != c,
        };
        if hold {
            match &mut run {
                Some((_, h)) => *h = tau + 1,
                None => run = Some((tau, tau + 1)),
            }
        } else if let Some((l, h)) = run.take() {
            set = set.union(&IntervalSet::range(l, h, universe));
        }
    }
    if let Some((l, h)) = run {
        set = set.union(&IntervalSet::range(l, h, universe));
    }
    set
}

/// Solves `a·τ + b OP c` for τ over `[0, universe)`, with `a != 0`.
fn solve_affine(a: i64, b: i64, op: BinOp, c: i64, universe: i64) -> IntervalSet {
    debug_assert!(a != 0);
    let d = c - b;
    match op {
        // a·τ < d  ⇔  τ < d/a (a>0)  |  τ > d/a (a<0)
        BinOp::Lt => {
            if a > 0 {
                IntervalSet::range(0, div_ceil(d, a), universe)
            } else {
                IntervalSet::range(div_floor(d, a) + 1, universe, universe)
            }
        }
        BinOp::Le => {
            if a > 0 {
                IntervalSet::range(0, div_floor(d, a) + 1, universe)
            } else {
                IntervalSet::range(div_ceil(d, a), universe, universe)
            }
        }
        BinOp::Gt => solve_affine(a, b, BinOp::Le, c, universe).complement(universe),
        BinOp::Ge => solve_affine(a, b, BinOp::Lt, c, universe).complement(universe),
        BinOp::Eq => {
            if d % a == 0 {
                IntervalSet::point(d / a, universe)
            } else {
                IntervalSet::empty()
            }
        }
        BinOp::Ne => solve_affine(a, b, BinOp::Eq, c, universe).complement(universe),
        _ => unreachable!("solve_affine only handles comparisons"),
    }
}

// ---------------------------------------------------------------------------
// Fixpoint
// ---------------------------------------------------------------------------

/// Result of the dataflow: per-block entry and exit states. `None` marks an
/// unreachable block.
pub struct UniformityAnalysis {
    /// State at each block entry.
    pub ins: Vec<Option<State>>,
    /// State at each block exit.
    pub outs: Vec<Option<State>>,
    /// Control dependences (shared with the lints).
    pub cds: Vec<Vec<ControlDep>>,
}

impl UniformityAnalysis {
    /// Runs the dataflow to fixpoint.
    pub fn run(cfg: &Cfg, f: &Function, block_dim_x: Option<u32>) -> UniformityAnalysis {
        let n = cfg.blocks.len();
        let cds = cfg.control_deps();
        let preds = cfg.preds();
        let mut ins: Vec<Option<State>> = vec![None; n];
        let mut outs: Vec<Option<State>> = vec![None; n];

        let mut init = State::new();
        for p in &f.params {
            init.insert(p.name.clone(), Fact::uniform());
        }

        let assigned: Vec<Vec<String>> = cfg.blocks.iter().map(assigned_in_block).collect();
        // For each branch block: the variables assigned in any block whose
        // execution that branch decides. Only these can become
        // path-dependent when the branch's paths merge.
        let mut controlled_assigns: HashMap<usize, HashSet<&str>> = HashMap::new();
        for b in 0..n {
            for cd in &cds[b] {
                controlled_assigns
                    .entry(cd.branch)
                    .or_default()
                    .extend(assigned[b].iter().map(String::as_str));
            }
        }
        // Address-taken variables can be written through pointers the
        // assignment scan cannot see: treat them as assigned everywhere.
        let mut aliased: HashSet<String> = HashSet::new();
        for bb in &cfg.blocks {
            collect_address_taken(bb, &mut aliased);
        }
        let merge = MergeCtx {
            cds: &cds,
            controlled_assigns: &controlled_assigns,
            aliased: &aliased,
        };

        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                let computed = if b == 0 {
                    Some(init.clone())
                } else {
                    join_preds(b, &preds, &outs, cfg, block_dim_x, &merge)
                };
                let Some(computed) = computed else { continue };
                let widened = widen(ins[b].as_ref(), computed);
                if ins[b].as_ref() != Some(&widened) {
                    ins[b] = Some(widened);
                    changed = true;
                }
                let mut out = ins[b].clone().unwrap();
                transfer(&cfg.blocks[b], &mut out, block_dim_x, &aliased);
                if outs[b].as_ref() != Some(&out) {
                    outs[b] = Some(out);
                    changed = true;
                }
            }
        }
        UniformityAnalysis { ins, outs, cds }
    }

    /// The uniformity of the controlling condition of `branch` evaluated at
    /// its own exit state. `Divergent` when the block is unreachable.
    pub fn branch_cond_uniformity(
        &self,
        cfg: &Cfg,
        branch: usize,
        block_dim_x: Option<u32>,
    ) -> Uniformity {
        let Term::Branch { cond, .. } = &cfg.blocks[branch].term else {
            return Uniformity::BlockUniform;
        };
        match &self.outs[branch] {
            Some(st) => eval(cond, st, block_dim_x).u,
            None => Uniformity::Divergent,
        }
    }
}

fn transfer(
    block: &crate::cfg::BasicBlock,
    st: &mut State,
    block_dim_x: Option<u32>,
    aliased: &HashSet<String>,
) {
    for s in &block.stmts {
        match &s.kind {
            CStmtKind::Decl(d) => {
                let fact = if aliased.contains(&d.name) && d.array_len.is_none() {
                    // Address-taken scalars can be written through pointers
                    // the dataflow cannot see: never trust them.
                    Fact::divergent()
                } else if d.array_len.is_some() {
                    // The array name denotes a uniform address.
                    Fact::uniform()
                } else {
                    match &d.init {
                        Some(init) => eval_mut(init, st, block_dim_x),
                        None => Fact::divergent(),
                    }
                };
                st.insert(d.name.clone(), fact);
            }
            CStmtKind::Expr(e) => {
                eval_mut(e, st, block_dim_x);
            }
            CStmtKind::Sync | CStmtKind::BarSync { .. } => {}
        }
    }
    if let Term::Branch { cond, .. } = &block.term {
        eval_mut(cond, st, block_dim_x);
    }
}

/// Assignment-visibility context threaded into every join (borrowed from
/// per-function precomputation in [`UniformityAnalysis::run`]).
struct MergeCtx<'a> {
    cds: &'a [Vec<ControlDep>],
    controlled_assigns: &'a HashMap<usize, HashSet<&'a str>>,
    aliased: &'a HashSet<String>,
}

/// Joins the exit states of `b`'s visited predecessors, injecting control
/// divergence where values merged from divergently-selected paths are not
/// pinned to a path-independent abstract value.
///
/// Injection is per variable and per branch: a branch poisons a variable at
/// this join only when (a) the branch *separates* the incoming paths — it
/// decides whether the predecessor runs but not whether the join runs, so
/// its two outcomes actually reconverge here — and (b) the variable is
/// assigned in some block that branch controls. A loop counter stepped
/// outside a divergent `if` therefore stays uniform across it, which the
/// barrier lint needs for reduction-shaped kernels; and a partition guard
/// in a fused kernel (which controls partition-internal joins just as much
/// as their predecessors) never poisons partition-local state.
fn join_preds(
    b: usize,
    preds: &[Vec<usize>],
    outs: &[Option<State>],
    cfg: &Cfg,
    block_dim_x: Option<u32>,
    merge: &MergeCtx<'_>,
) -> Option<State> {
    let live: Vec<usize> = preds[b]
        .iter()
        .copied()
        .filter(|&p| outs[p].is_some())
        .collect();
    if live.is_empty() {
        return None;
    }
    // Per predecessor: the non-uniform branches whose outcomes differ
    // across paths into this join, with their condition uniformity.
    let sep: Vec<Vec<(usize, Uniformity)>> = live
        .iter()
        .map(|&p| {
            merge.cds[p]
                .iter()
                .filter(|cd| !merge.cds[b].contains(cd))
                .filter_map(|cd| {
                    let Term::Branch { cond, .. } = &cfg.blocks[cd.branch].term else {
                        return None;
                    };
                    let u = match &outs[cd.branch] {
                        Some(st) => eval(cond, st, block_dim_x).u,
                        None => Uniformity::BlockUniform,
                    };
                    (u > Uniformity::BlockUniform).then_some((cd.branch, u))
                })
                .collect()
        })
        .collect();

    let first = outs[live[0]].as_ref().unwrap();
    let mut joined = State::new();
    'vars: for (name, &f0) in first {
        let mut facts = vec![f0];
        for &p in &live[1..] {
            match outs[p].as_ref().unwrap().get(name) {
                Some(f) => facts.push(*f),
                None => continue 'vars,
            }
        }
        let all_equal = facts.iter().all(|f| *f == f0);
        let fact = if all_equal && f0.val.is_some() {
            // A concrete function of τ is path-independent: no injection.
            f0
        } else if all_equal && live.len() == 1 {
            f0
        } else {
            let touched = |branch: &usize| {
                merge.aliased.contains(name)
                    || merge
                        .controlled_assigns
                        .get(branch)
                        .is_some_and(|s| s.contains(name.as_str()))
            };
            let u = facts
                .iter()
                .zip(&sep)
                .map(|(f, s)| {
                    let c = s
                        .iter()
                        .filter(|(branch, _)| touched(branch))
                        .map(|&(_, u)| u)
                        .max()
                        .unwrap_or(Uniformity::BlockUniform);
                    f.u.max(c)
                })
                .max()
                .unwrap();
            let val = if all_equal { f0.val } else { None };
            Fact { u, val }
        };
        joined.insert(name.clone(), fact);
    }
    Some(joined)
}

/// Every scalar variable declared or assigned in `block`, including
/// assignments nested inside larger expressions and the terminator's
/// condition (`for (...; (x = f()) != 0; ...)`).
fn assigned_in_block(block: &crate::cfg::BasicBlock) -> Vec<String> {
    let mut names = Vec::new();
    for s in &block.stmts {
        match &s.kind {
            CStmtKind::Decl(d) => {
                names.push(d.name.clone());
                if let Some(init) = &d.init {
                    collect_assigns(init, &mut names);
                }
            }
            CStmtKind::Expr(e) => collect_assigns(e, &mut names),
            CStmtKind::Sync | CStmtKind::BarSync { .. } => {}
        }
    }
    if let Term::Branch { cond, .. } = &block.term {
        collect_assigns(cond, &mut names);
    }
    names
}

/// Records names written by `=`, compound assignment, or `++`/`--` anywhere
/// inside `e`. Writes through arrays or pointers have no scalar binding to
/// record; their targets still get scanned for nested assignments.
fn collect_assigns(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Assign(_, lhs, rhs) => {
            if let Expr::Ident(name) = lhs.as_ref() {
                out.push(name.clone());
            } else {
                collect_assigns(lhs, out);
            }
            collect_assigns(rhs, out);
        }
        Expr::IncDec { target, .. } => {
            if let Expr::Ident(name) = target.as_ref() {
                out.push(name.clone());
            } else {
                collect_assigns(target, out);
            }
        }
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::AddrOf(a) | Expr::Deref(a) => {
            collect_assigns(a, out)
        }
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            collect_assigns(a, out);
            collect_assigns(b, out);
        }
        Expr::Ternary(c, t, f) => {
            collect_assigns(c, out);
            collect_assigns(t, out);
            collect_assigns(f, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_assigns(a, out);
            }
        }
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Ident(_) | Expr::Builtin(_) => {}
    }
}

/// Records names whose address is taken anywhere in `block`.
fn collect_address_taken(block: &crate::cfg::BasicBlock, out: &mut HashSet<String>) {
    fn walk(e: &Expr, out: &mut HashSet<String>) {
        match e {
            Expr::AddrOf(inner) => {
                if let Expr::Ident(name) = inner.as_ref() {
                    out.insert(name.clone());
                }
                walk(inner, out);
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::Deref(a) => walk(a, out),
            Expr::Binary(_, a, b) | Expr::Index(a, b) | Expr::Assign(_, a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::IncDec { target, .. } => walk(target, out),
            Expr::Ternary(c, t, f) => {
                walk(c, out);
                walk(t, out);
                walk(f, out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    walk(a, out);
                }
            }
            Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Ident(_) | Expr::Builtin(_) => {}
        }
    }
    for s in &block.stmts {
        match &s.kind {
            CStmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    walk(init, out);
                }
            }
            CStmtKind::Expr(e) => walk(e, out),
            CStmtKind::Sync | CStmtKind::BarSync { .. } => {}
        }
    }
    if let Term::Branch { cond, .. } = &block.term {
        walk(cond, out);
    }
}

/// Classic widening: a variable whose abstract value changed between
/// iterations loses it, guaranteeing termination despite growing affine
/// coefficients in loops.
fn widen(old: Option<&State>, new: State) -> State {
    let Some(old) = old else { return new };
    let mut out = State::new();
    for (name, nf) in new {
        let f = match old.get(&name) {
            Some(of) if of.val != nf.val => Fact {
                u: of.u.max(nf.u),
                val: None,
            },
            Some(of) => Fact {
                u: of.u.max(nf.u),
                val: nf.val,
            },
            None => nf,
        };
        out.insert(name, f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use cuda_frontend::parse_kernel;

    fn analyze(body: &str, bdx: Option<u32>) -> (Cfg, UniformityAnalysis) {
        let src = format!("__global__ void k(int* out, int n) {{ {body} }}");
        let f = parse_kernel(&src).expect("parse");
        let cfg = Cfg::build(&f);
        let ua = UniformityAnalysis::run(&cfg, &f, bdx);
        (cfg, ua)
    }

    fn exit_fact(body: &str, var: &str) -> Fact {
        let (cfg, ua) = analyze(body, Some(256));
        // The last block jumping to exit holds the final state.
        let preds = cfg.preds();
        let p = preds[cfg.exit][0];
        ua.outs[p].as_ref().unwrap()[var]
    }

    #[test]
    fn tid_is_divergent_affine() {
        let f = exit_fact("int t = threadIdx.x; out[t] = t;", "t");
        assert_eq!(f.u, Uniformity::Divergent);
        assert_eq!(f.val, Some(AbsVal::Affine { a: 1, b: 0 }));
    }

    #[test]
    fn affine_arithmetic_composes() {
        let f = exit_fact("int t = threadIdx.x; int i = 4 * t + 3; out[i] = 0;", "i");
        assert_eq!(f.val, Some(AbsVal::Affine { a: 4, b: 3 }));
    }

    #[test]
    fn params_are_block_uniform() {
        let f = exit_fact("int m = n + 1; out[0] = m;", "m");
        assert_eq!(f.u, Uniformity::BlockUniform);
    }

    #[test]
    fn warp_id_is_warp_uniform() {
        let f = exit_fact("int w = threadIdx.x / 32; out[w] = 0;", "w");
        assert_eq!(f.u, Uniformity::WarpUniform);
        let f = exit_fact("int w = threadIdx.x >> 5; out[w] = 0;", "w");
        assert_eq!(f.u, Uniformity::WarpUniform);
    }

    #[test]
    fn modulo_becomes_tidmod() {
        let f = exit_fact("int t = threadIdx.x; int i = t % 64; out[i] = 0;", "i");
        assert_eq!(
            f.val,
            Some(AbsVal::TidMod {
                a: 1,
                b: 0,
                m: 64,
                off: 0
            })
        );
    }

    #[test]
    fn mask_becomes_tidmod() {
        let f = exit_fact("int t = threadIdx.x; int i = t & 31; out[i] = 0;", "i");
        assert_eq!(
            f.val,
            Some(AbsVal::TidMod {
                a: 1,
                b: 0,
                m: 32,
                off: 0
            })
        );
    }

    #[test]
    fn uniform_loop_counter_stays_uniform() {
        let (cfg, ua) = analyze(
            "int acc = 0; for (int i = 0; i < n; i += 1) { acc = acc + 1; } out[0] = acc;",
            None,
        );
        let preds = cfg.preds();
        let p = preds[cfg.exit][0];
        let st = ua.outs[p].as_ref().unwrap();
        assert_eq!(st["acc"].u, Uniformity::BlockUniform);
    }

    #[test]
    fn divergent_branch_poisons_merged_value() {
        let f = exit_fact(
            "int t = threadIdx.x; int x = 0; if (t < 16) { x = n; } else { x = n; } out[0] = x;",
            "x",
        );
        // Both arms store a BlockUniform *unknown* value, but which arm ran
        // depends on the thread: x is divergent.
        assert_eq!(f.u, Uniformity::Divergent);
    }

    #[test]
    fn equal_concrete_values_survive_divergent_merge() {
        let f = exit_fact(
            "int t = threadIdx.x; int x = 0; if (t < 16) { x = 5; } else { x = 5; } out[0] = x;",
            "x",
        );
        assert_eq!(f.val, Some(AbsVal::Const(5)));
    }

    #[test]
    fn loop_counter_stays_uniform_across_divergent_if() {
        // k is stepped outside the divergent branch, so the join after the
        // `if` must not poison it — reduction-shaped kernels put barriers
        // under loop conditions exactly like this.
        let f = exit_fact(
            "int k = 0; int t = threadIdx.x; \
             for (k = 0; k < 4; k = k + 1) { if (t < 16) { out[k] = 1; } } \
             out[0] = k;",
            "k",
        );
        assert_eq!(f.u, Uniformity::BlockUniform);
    }

    #[test]
    fn variable_assigned_under_divergent_if_diverges_at_join() {
        let f = exit_fact(
            "int t = threadIdx.x; int x = n; if (t < 16) { x = n + 1; } out[0] = x;",
            "x",
        );
        assert_eq!(f.u, Uniformity::Divergent);
    }

    #[test]
    fn address_taken_variable_is_not_trusted_across_divergent_merge() {
        // `x` is written through a pointer inside the divergent branch; the
        // assignment scan cannot see that, so aliasing must force the
        // conservative join.
        let f = exit_fact(
            "int t = threadIdx.x; int x = 0; int* p = &x; \
             if (t < 16) { *p = 1; } out[0] = x;",
            "x",
        );
        assert_eq!(f.u, Uniformity::Divergent);
    }

    #[test]
    fn loop_variant_affine_widens_to_unknown() {
        let f = exit_fact(
            "int t = threadIdx.x; int x = t; for (int i = 0; i < n; i += 1) { x = x + t; } out[0] = x;",
            "x",
        );
        assert_eq!(f.val, None);
        assert_eq!(f.u, Uniformity::Divergent);
    }

    #[test]
    fn ballot_is_warp_uniform() {
        let f = exit_fact(
            "int t = threadIdx.x; int v = __ballot(t < 7); out[0] = v;",
            "v",
        );
        assert_eq!(f.u, Uniformity::WarpUniform);
    }

    #[test]
    fn loads_are_divergent() {
        let f = exit_fact("int v = out[0]; out[1] = v;", "v");
        assert_eq!(f.u, Uniformity::Divergent);
    }

    #[test]
    fn interval_algebra() {
        let a = IntervalSet::range(0, 10, 32);
        let b = IntervalSet::range(5, 20, 32);
        assert_eq!(a.union(&b), IntervalSet::range(0, 20, 32));
        assert_eq!(a.intersect(&b), IntervalSet::range(5, 10, 32));
        assert_eq!(a.complement(32), IntervalSet::range(10, 32, 32));
        assert_eq!(a.count(), 10);
        assert!(IntervalSet::full(64).is_warp_aligned());
        assert!(!IntervalSet::range(0, 48, 64).is_warp_aligned());
    }

    #[test]
    fn predicates_solve_affine_comparisons() {
        let src = "__global__ void k(int* out) { int t = threadIdx.x; out[t] = t; }";
        let f = parse_kernel(src).unwrap();
        let cfg = Cfg::build(&f);
        let ua = UniformityAnalysis::run(&cfg, &f, Some(128));
        let st = ua.outs[0].as_ref().unwrap();
        let lt = cuda_frontend::parser::parse_expr("t < 64").unwrap();
        assert_eq!(
            eval_pred(&lt, st, 128, Some(128)),
            Some(IntervalSet::range(0, 64, 128))
        );
        let not_lt = cuda_frontend::parser::parse_expr("!(t < 64)").unwrap();
        assert_eq!(
            eval_pred(&not_lt, st, 128, Some(128)),
            Some(IntervalSet::range(64, 128, 128))
        );
        let eq = cuda_frontend::parser::parse_expr("t == 0").unwrap();
        assert_eq!(
            eval_pred(&eq, st, 128, Some(128)),
            Some(IntervalSet::point(0, 128))
        );
        let conj = cuda_frontend::parser::parse_expr("t >= 32 && t < 96").unwrap();
        assert_eq!(
            eval_pred(&conj, st, 128, Some(128)),
            Some(IntervalSet::range(32, 96, 128))
        );
        // Modular guards have no closed interval form but are solved
        // pointwise: `t % 2 == 0` is the even threads.
        let modded = cuda_frontend::parser::parse_expr("t % 2 == 0").unwrap();
        let evens = eval_pred(&modded, st, 128, Some(128)).expect("pointwise solve");
        assert_eq!(evens.count(), 64);
        assert!(evens.contains(0) && !evens.contains(1) && evens.contains(126));
        // The fused-kernel remap shape: `(gtid % 64) < 32` selects the low
        // half of each 64-thread partition.
        let remap = cuda_frontend::parser::parse_expr("(t % 64) < 32").unwrap();
        let low = eval_pred(&remap, st, 128, Some(128)).expect("pointwise solve");
        assert_eq!(
            low,
            IntervalSet::range(0, 32, 128).union(&IntervalSet::range(64, 96, 128))
        );
        // Data-dependent guards stay unparsable.
        let data = cuda_frontend::parser::parse_expr("out[t] > 0").unwrap();
        assert_eq!(eval_pred(&data, st, 128, Some(128)), None);
    }

    #[test]
    fn negative_coefficient_comparisons() {
        // 128 - t > 64  ⇔  t < 64
        let mut st = State::new();
        st.insert(
            "t".into(),
            Fact {
                u: Uniformity::Divergent,
                val: Some(AbsVal::Affine { a: 1, b: 0 }),
            },
        );
        let e = cuda_frontend::parser::parse_expr("128 - t > 64").unwrap();
        assert_eq!(
            eval_pred(&e, &st, 128, None),
            Some(IntervalSet::range(0, 64, 128))
        );
    }
}
