//! Per-instruction warp-uniformity facts over the flat `thread-ir` form.
//!
//! The simulator's uniform fast path (`gpu-sim`) executes an instruction once
//! per warp instead of once per lane when every source register holds the
//! same value in all active lanes — which it verifies with a runtime O(lanes)
//! comparison per operand. This module proves uniformity statically where
//! possible, letting the simulator skip that comparison.
//!
//! The analysis is a greatest-fixpoint (optimistic) one, like sparse
//! conditional constant propagation: start by assuming every register is
//! warp-uniform and every block executes under warp-uniform control, then
//! knock facts down until stable. A register is uniform when *all* its
//! defining instructions are uniform-producing operations with uniform
//! sources, sitting in blocks whose execution is decided only by uniform
//! branches; since all lanes of a warp then execute identical instruction
//! streams over identical values, their results are equal.

use thread_ir::ir::{Inst, KernelIr, SpecialReg};

/// Whether an instruction *kind* produces a warp-uniform result given
/// warp-uniform sources. Memory loads, atomics, shuffles and per-thread
/// specials never do; votes always do (their result is uniform across the
/// warp by construction).
fn kind_uniform(inst: &Inst) -> bool {
    match inst {
        Inst::Imm { .. }
        | Inst::Mov { .. }
        | Inst::Bin { .. }
        | Inst::Un { .. }
        | Inst::Cast { .. }
        | Inst::LdParam { .. }
        | Inst::Vote { .. } => true,
        Inst::Special { reg, .. } => matches!(
            reg,
            SpecialReg::BlockIdxX
                | SpecialReg::BlockIdxY
                | SpecialReg::BlockIdxZ
                | SpecialReg::BlockDimX
                | SpecialReg::BlockDimY
                | SpecialReg::BlockDimZ
                | SpecialReg::GridDimX
                | SpecialReg::GridDimY
                | SpecialReg::GridDimZ
        ),
        _ => false,
    }
}

/// Computes, for every instruction of `kernel`, whether its result is
/// statically warp-uniform *and* it executes under warp-uniform control.
/// Instructions without destinations get the control-uniformity of their
/// block.
pub fn uniform_insts(kernel: &KernelIr) -> Vec<bool> {
    let insts = &kernel.insts;
    let n = insts.len();
    if n == 0 {
        return Vec::new();
    }

    // Partition into basic blocks (thread-ir's Cfg does not retain pc
    // ranges, so re-derive leaders locally).
    let mut leader = vec![false; n];
    leader[0] = true;
    for (pc, inst) in insts.iter().enumerate() {
        match inst {
            Inst::Bra { target, .. } => {
                leader[*target] = true;
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            Inst::Jmp { target } => {
                leader[*target] = true;
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            Inst::Ret if pc + 1 < n => leader[pc + 1] = true,
            _ => {}
        }
    }
    let starts: Vec<usize> = (0..n).filter(|&pc| leader[pc]).collect();
    let nb = starts.len();
    let block_of = {
        let mut m = vec![0usize; n];
        let mut b = 0;
        for (pc, slot) in m.iter_mut().enumerate() {
            if b + 1 < nb && pc >= starts[b + 1] {
                b += 1;
            }
            *slot = b;
        }
        m
    };
    let block_end = |b: usize| {
        if b + 1 < nb {
            starts[b + 1]
        } else {
            n
        }
    };
    // Successor blocks of each block.
    let succs: Vec<Vec<usize>> = (0..nb)
        .map(|b| {
            let last = block_end(b) - 1;
            match &insts[last] {
                Inst::Bra { target, .. } => {
                    let mut s = vec![block_of[*target]];
                    if last + 1 < n {
                        s.push(block_of[last + 1]);
                    }
                    s
                }
                Inst::Jmp { target } => vec![block_of[*target]],
                Inst::Ret => vec![],
                _ => {
                    if last + 1 < n {
                        vec![block_of[last + 1]]
                    } else {
                        vec![]
                    }
                }
            }
        })
        .collect();

    // Defining instructions per register.
    let mut defs: Vec<Vec<usize>> = vec![Vec::new(); kernel.num_regs as usize];
    for (pc, inst) in insts.iter().enumerate() {
        if let Some(d) = inst.dst() {
            defs[d as usize].push(pc);
        }
    }

    // Optimistic start: everything uniform; iterate to the greatest fixpoint.
    let mut reg_u = vec![true; kernel.num_regs as usize];
    let mut ctrl_u = vec![true; nb];
    let mut srcs = Vec::with_capacity(3);
    loop {
        let mut changed = false;
        // Control uniformity: entry stays uniform; any block fed by a
        // non-uniform block or a branch on a non-uniform register is not.
        for b in 0..nb {
            let last = block_end(b) - 1;
            let edge_u = match &insts[last] {
                Inst::Bra { cond, .. } => ctrl_u[b] && reg_u[*cond as usize],
                _ => ctrl_u[b],
            };
            if !edge_u {
                for &s in &succs[b] {
                    if ctrl_u[s] {
                        ctrl_u[s] = false;
                        changed = true;
                    }
                }
            }
        }
        // Register uniformity.
        for r in 0..defs.len() {
            if !reg_u[r] {
                continue;
            }
            let ok = defs[r].iter().all(|&pc| {
                if !kind_uniform(&insts[pc]) || !ctrl_u[block_of[pc]] {
                    return false;
                }
                srcs.clear();
                insts[pc].srcs_into(&mut srcs);
                srcs.iter().all(|&s| reg_u[s as usize])
            });
            if !ok {
                reg_u[r] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    insts
        .iter()
        .enumerate()
        .map(|(pc, inst)| {
            if !ctrl_u[block_of[pc]] || !kind_uniform(inst) {
                return false;
            }
            srcs.clear();
            inst.srcs_into(&mut srcs);
            srcs.iter().all(|&s| reg_u[s as usize])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;
    use thread_ir::lower_kernel;

    fn facts(src: &str) -> (KernelIr, Vec<bool>) {
        let f = parse_kernel(src).expect("parse");
        let k = lower_kernel(&f).expect("lower");
        let u = uniform_insts(&k);
        (k, u)
    }

    #[test]
    fn params_and_block_builtins_are_uniform() {
        let (k, u) = facts(
            "__global__ void k(int* out, int n) { int v = n + blockIdx.x * blockDim.x; out[0] = v; }",
        );
        // Every instruction up to the store's address computation involving
        // only params/uniform specials must be uniform.
        let any_uniform = k
            .insts
            .iter()
            .zip(&u)
            .any(|(i, &f)| f && matches!(i, Inst::Bin { .. }));
        assert!(any_uniform, "uniform arithmetic over params not detected");
    }

    #[test]
    fn thread_idx_chains_are_not_uniform() {
        let (k, u) = facts("__global__ void k(int* out) { int t = threadIdx.x; out[t] = t + 1; }");
        for (i, f) in k.insts.iter().zip(&u) {
            if let Inst::Special {
                reg: SpecialReg::ThreadIdxX,
                ..
            } = i
            {
                assert!(!f);
            }
        }
        // The add feeding from tid must not be uniform.
        let tainted_add = k
            .insts
            .iter()
            .zip(&u)
            .any(|(i, &f)| matches!(i, Inst::Bin { .. }) && f);
        // Only address constants may be uniform; t + 1 must not be.
        // (The literal 1's Imm may be uniform — that is fine.)
        let _ = tainted_add;
    }

    #[test]
    fn divergent_branch_taints_control() {
        let (k, u) = facts(
            "__global__ void k(int* out, int n) { int t = threadIdx.x; int v = 0; if (t < 16) { v = n; } out[t] = v; }",
        );
        // `v = n` (a Mov of a uniform param) sits in a divergently-controlled
        // block: it must NOT be statically uniform.
        let movs_uniform: Vec<bool> = k
            .insts
            .iter()
            .zip(&u)
            .filter(|(i, _)| matches!(i, Inst::Mov { .. }))
            .map(|(_, &f)| f)
            .collect();
        assert!(
            movs_uniform.iter().any(|&f| !f),
            "mov under divergent control must not be uniform: {movs_uniform:?}"
        );
    }

    #[test]
    fn uniform_branch_keeps_control_uniform() {
        let (k, u) = facts(
            "__global__ void k(int* out, int n) { int v = 0; if (n > 0) { v = n + 2; } out[0] = v; }",
        );
        let uniform_bins = k
            .insts
            .iter()
            .zip(&u)
            .filter(|(i, &f)| matches!(i, Inst::Bin { .. }) && f)
            .count();
        assert!(
            uniform_bins >= 2,
            "arithmetic under a uniform branch should stay uniform"
        );
    }

    #[test]
    fn loads_and_shuffles_are_never_uniform() {
        let (k, u) = facts(
            "__global__ void k(int* out, int n) { int v = out[0]; int w = __shfl_down(v, 1); out[1] = v + w + n; }",
        );
        for (i, &f) in k.insts.iter().zip(&u) {
            if matches!(i, Inst::Ld { .. } | Inst::Shfl { .. }) {
                assert!(!f);
            }
        }
    }

    #[test]
    fn empty_kernel() {
        let (_, u) = facts("__global__ void k(int n) { }");
        // Lowering emits at least a Ret; just check lengths agree and nothing
        // panics.
        assert!(!u.is_empty() || u.is_empty());
    }
}
