//! AST → control-flow-graph lowering for the fusion-safety lints.
//!
//! Every `__syncthreads()` / `bar.sync` lands in a basic block of its own, so
//! "barrier-delimited phase" questions become plain graph reachability with
//! barrier blocks removed. A virtual exit block post-dominates everything,
//! which makes the control-dependence computation (used by the
//! barrier-divergence lint and the per-block thread-set refinement) the
//! textbook one: `N` is control-dependent on branch edge `B→S` iff `N`
//! post-dominates `S` but not `B`.

use std::collections::HashMap;

use cuda_frontend::ast::{Block, Expr, Function, Stmt, VarDecl};
use cuda_frontend::diag::preorder_stmts;

/// A basic-block id.
pub type BlockId = usize;

/// One statement placed into a basic block.
#[derive(Debug, Clone)]
pub struct CStmt {
    /// The lowered statement payload.
    pub kind: CStmtKind,
    /// Pre-order index of the originating AST statement, for span lookup.
    pub span_idx: Option<usize>,
}

/// The payload of a [`CStmt`].
#[derive(Debug, Clone)]
pub enum CStmtKind {
    /// A variable declaration (its initializer is evaluated here).
    Decl(VarDecl),
    /// An expression evaluated for its side effects.
    Expr(Expr),
    /// `__syncthreads()` — all block threads participate.
    Sync,
    /// `bar.sync id, count` — a named partial barrier.
    BarSync {
        /// Barrier id (0-15).
        id: u32,
        /// Declared participant count.
        count: u32,
    },
}

/// Block terminator.
#[derive(Debug, Clone)]
pub enum Term {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way branch on `cond`.
    Branch {
        /// The branch condition.
        cond: Expr,
        /// Target when `cond` is nonzero.
        t: BlockId,
        /// Target when `cond` is zero.
        f: BlockId,
        /// Span of the statement that produced the branch.
        span_idx: Option<usize>,
    },
    /// The virtual exit (no successors).
    Exit,
}

impl Term {
    /// Successor block ids.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Term::Jump(t) => vec![*t],
            Term::Branch { t, f, .. } => {
                if t == f {
                    vec![*t]
                } else {
                    vec![*t, *f]
                }
            }
            Term::Exit => vec![],
        }
    }
}

/// A basic block: straight-line statements plus a terminator.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// The statements, in order.
    pub stmts: Vec<CStmt>,
    /// The terminator.
    pub term: Term,
}

impl BasicBlock {
    /// True when this block is a dedicated barrier block.
    pub fn is_barrier(&self) -> bool {
        matches!(
            self.stmts.first().map(|s| &s.kind),
            Some(CStmtKind::Sync | CStmtKind::BarSync { .. })
        )
    }
}

/// The per-kernel CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks indexed by [`BlockId`]; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// The virtual exit block.
    pub exit: BlockId,
}

/// A branch condition a block's execution depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlDep {
    /// The branch block whose condition decides execution.
    pub branch: BlockId,
    /// The polarity: execution requires the condition to evaluate to this.
    pub polarity: bool,
}

impl Cfg {
    /// Lowers a function body to a CFG. `Stmt` nodes are mapped to their
    /// pre-order index ([`cuda_frontend::diag::preorder_stmts`] order) so
    /// diagnostics can be resolved against a
    /// [`cuda_frontend::diag::SpanTable`].
    pub fn build(f: &Function) -> Cfg {
        let mut span_of: HashMap<usize, usize> = HashMap::new();
        let mut idx = 0usize;
        preorder_stmts(f, &mut |s| {
            span_of.insert(s as *const Stmt as usize, idx);
            idx += 1;
        });
        let mut b = Builder {
            blocks: vec![BuildBlock::default(), BuildBlock::default()],
            cur: 0,
            exit: 1,
            labels: HashMap::new(),
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
            span_of,
        };
        b.blocks[b.exit].term = Some(Term::Exit);
        b.lower_block(&f.body);
        let exit = b.exit;
        b.terminate(Term::Jump(exit));
        let blocks = b
            .blocks
            .into_iter()
            .map(|bb| BasicBlock {
                stmts: bb.stmts,
                term: bb.term.unwrap_or(Term::Exit),
            })
            .collect();
        Cfg { blocks, exit }
    }

    /// Predecessors of every block.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, bb) in self.blocks.iter().enumerate() {
            for s in bb.term.succs() {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Post-dominator sets as bit matrices: `pdom[b][n]` is true when `n`
    /// post-dominates `b`. Blocks that cannot reach the exit (infinite
    /// loops) keep the conservative full set.
    pub fn postdominators(&self) -> Vec<Vec<bool>> {
        let n = self.blocks.len();
        let mut pdom = vec![vec![true; n]; n];
        pdom[self.exit] = vec![false; n];
        pdom[self.exit][self.exit] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == self.exit {
                    continue;
                }
                let succs = self.blocks[b].term.succs();
                let mut new = vec![succs.is_empty(); n];
                if let Some((&first, rest)) = succs.split_first() {
                    new.copy_from_slice(&pdom[first]);
                    for &s in rest {
                        for (nv, sv) in new.iter_mut().zip(&pdom[s]) {
                            *nv = *nv && *sv;
                        }
                    }
                }
                new[b] = true;
                if new != pdom[b] {
                    pdom[b] = new;
                    changed = true;
                }
            }
        }
        pdom
    }

    /// The transitively-closed control dependences of every block: the set
    /// of `(branch, polarity)` conditions whose outcomes decide whether the
    /// block executes.
    pub fn control_deps(&self) -> Vec<Vec<ControlDep>> {
        let n = self.blocks.len();
        let pdom = self.postdominators();
        let mut deps: Vec<Vec<ControlDep>> = vec![Vec::new(); n];
        for (b, bb) in self.blocks.iter().enumerate() {
            if let Term::Branch { t, f, .. } = bb.term {
                if t == f {
                    continue;
                }
                for (node, polarity) in [(t, true), (f, false)] {
                    for dep in 0..n {
                        if pdom[node][dep] && !pdom[b][dep] {
                            let cd = ControlDep {
                                branch: b,
                                polarity,
                            };
                            if !deps[dep].contains(&cd) {
                                deps[dep].push(cd);
                            }
                        }
                    }
                }
            }
        }
        // Transitive closure: a block also depends on whatever decides the
        // branches it depends on.
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                let mut add = Vec::new();
                for cd in &deps[b] {
                    for inherited in &deps[cd.branch] {
                        if !deps[b].contains(inherited) && !add.contains(inherited) {
                            add.push(*inherited);
                        }
                    }
                }
                if !add.is_empty() {
                    deps[b].extend(add);
                    changed = true;
                }
            }
        }
        deps
    }

    /// Blocks that start a barrier-delimited phase: the entry plus every
    /// successor of a barrier block.
    pub fn phase_starts(&self) -> Vec<BlockId> {
        let mut starts = vec![0];
        for bb in &self.blocks {
            if bb.is_barrier() {
                for s in bb.term.succs() {
                    if !starts.contains(&s) {
                        starts.push(s);
                    }
                }
            }
        }
        starts
    }

    /// Blocks reachable from `from` without entering a barrier block
    /// (`from` itself is included).
    pub fn barrier_free_reach(&self, from: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(b) = stack.pop() {
            for s in self.blocks[b].term.succs() {
                if !seen[s] && !self.blocks[s].is_barrier() {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[derive(Default)]
struct BuildBlock {
    stmts: Vec<CStmt>,
    term: Option<Term>,
}

struct Builder {
    blocks: Vec<BuildBlock>,
    cur: BlockId,
    exit: BlockId,
    labels: HashMap<String, BlockId>,
    break_stack: Vec<BlockId>,
    continue_stack: Vec<BlockId>,
    span_of: HashMap<usize, usize>,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BuildBlock::default());
        self.blocks.len() - 1
    }

    fn span_idx(&self, s: &Stmt) -> Option<usize> {
        self.span_of.get(&(s as *const Stmt as usize)).copied()
    }

    fn push(&mut self, kind: CStmtKind, span_idx: Option<usize>) {
        self.blocks[self.cur].stmts.push(CStmt { kind, span_idx });
    }

    /// Terminates the current block (no-op if a `break`/`goto` already did)
    /// — callers then switch `cur` to a fresh block.
    fn terminate(&mut self, t: Term) {
        let b = &mut self.blocks[self.cur];
        if b.term.is_none() {
            b.term = Some(t);
        }
    }

    fn label_block(&mut self, name: &str) -> BlockId {
        if let Some(&b) = self.labels.get(name) {
            return b;
        }
        let b = self.new_block();
        self.labels.insert(name.to_owned(), b);
        b
    }

    fn lower_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.lower_stmt(s);
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        let span = self.span_idx(s);
        match s {
            Stmt::Decl(d) => self.push(CStmtKind::Decl(d.clone()), span),
            Stmt::Expr(e) => self.push(CStmtKind::Expr(e.clone()), span),
            Stmt::SyncThreads => self.lower_barrier(CStmtKind::Sync, span),
            Stmt::BarSync { id, count } => self.lower_barrier(
                CStmtKind::BarSync {
                    id: *id,
                    count: *count,
                },
                span,
            ),
            Stmt::If(cond, then_b, else_b) => {
                let then_e = self.new_block();
                let after = self.new_block();
                let else_e = else_b.as_ref().map(|_| self.new_block());
                self.terminate(Term::Branch {
                    cond: cond.clone(),
                    t: then_e,
                    f: else_e.unwrap_or(after),
                    span_idx: span,
                });
                self.cur = then_e;
                self.lower_block(then_b);
                self.terminate(Term::Jump(after));
                if let (Some(else_e), Some(else_b)) = (else_e, else_b) {
                    self.cur = else_e;
                    self.lower_block(else_b);
                    self.terminate(Term::Jump(after));
                }
                self.cur = after;
            }
            Stmt::While(cond, body) => {
                let header = self.new_block();
                let body_e = self.new_block();
                let after = self.new_block();
                self.terminate(Term::Jump(header));
                self.cur = header;
                self.terminate(Term::Branch {
                    cond: cond.clone(),
                    t: body_e,
                    f: after,
                    span_idx: span,
                });
                self.break_stack.push(after);
                self.continue_stack.push(header);
                self.cur = body_e;
                self.lower_block(body);
                self.terminate(Term::Jump(header));
                self.break_stack.pop();
                self.continue_stack.pop();
                self.cur = after;
            }
            Stmt::DoWhile(body, cond) => {
                let body_e = self.new_block();
                let latch = self.new_block();
                let after = self.new_block();
                self.terminate(Term::Jump(body_e));
                self.break_stack.push(after);
                self.continue_stack.push(latch);
                self.cur = body_e;
                self.lower_block(body);
                self.terminate(Term::Jump(latch));
                self.break_stack.pop();
                self.continue_stack.pop();
                self.cur = latch;
                self.terminate(Term::Branch {
                    cond: cond.clone(),
                    t: body_e,
                    f: after,
                    span_idx: span,
                });
                self.cur = after;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.lower_stmt(init);
                }
                let header = self.new_block();
                let body_e = self.new_block();
                let step_b = self.new_block();
                let after = self.new_block();
                self.terminate(Term::Jump(header));
                self.cur = header;
                match cond {
                    Some(cond) => self.terminate(Term::Branch {
                        cond: cond.clone(),
                        t: body_e,
                        f: after,
                        span_idx: span,
                    }),
                    None => self.terminate(Term::Jump(body_e)),
                }
                self.break_stack.push(after);
                self.continue_stack.push(step_b);
                self.cur = body_e;
                self.lower_block(body);
                self.terminate(Term::Jump(step_b));
                self.break_stack.pop();
                self.continue_stack.pop();
                self.cur = step_b;
                if let Some(step) = step {
                    self.push(CStmtKind::Expr(step.clone()), span);
                }
                self.terminate(Term::Jump(header));
                self.cur = after;
            }
            Stmt::Switch { scrutinee, cases } => {
                let after = self.new_block();
                let body_blocks: Vec<BlockId> = cases.iter().map(|_| self.new_block()).collect();
                let default_target = cases
                    .iter()
                    .position(|c| c.value.is_none())
                    .map(|i| body_blocks[i])
                    .unwrap_or(after);
                // Dispatch: a chain of equality tests in label order.
                let value_cases: Vec<(usize, i64)> = cases
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.value.map(|v| (i, v)))
                    .collect();
                for (ci, &(i, v)) in value_cases.iter().enumerate() {
                    let next = if ci + 1 < value_cases.len() {
                        self.new_block()
                    } else {
                        default_target
                    };
                    let cond = Expr::bin(
                        cuda_frontend::ast::BinOp::Eq,
                        scrutinee.clone(),
                        Expr::int(v),
                    );
                    self.terminate(Term::Branch {
                        cond,
                        t: body_blocks[i],
                        f: next,
                        span_idx: span,
                    });
                    self.cur = next;
                }
                if value_cases.is_empty() {
                    self.terminate(Term::Jump(default_target));
                }
                // Bodies fall through to the next case (C semantics).
                self.break_stack.push(after);
                for (i, case) in cases.iter().enumerate() {
                    self.cur = body_blocks[i];
                    for cs in &case.body {
                        self.lower_stmt(cs);
                    }
                    let next = body_blocks.get(i + 1).copied().unwrap_or(after);
                    self.terminate(Term::Jump(next));
                }
                self.break_stack.pop();
                self.cur = after;
            }
            Stmt::Return(_) => {
                let exit = self.exit;
                self.terminate(Term::Jump(exit));
                self.cur = self.new_block();
            }
            Stmt::Break => {
                let target = self.break_stack.last().copied().unwrap_or(self.exit);
                self.terminate(Term::Jump(target));
                self.cur = self.new_block();
            }
            Stmt::Continue => {
                let target = self.continue_stack.last().copied().unwrap_or(self.exit);
                self.terminate(Term::Jump(target));
                self.cur = self.new_block();
            }
            Stmt::Goto(label) => {
                let target = self.label_block(label);
                self.terminate(Term::Jump(target));
                self.cur = self.new_block();
            }
            Stmt::Label(label) => {
                let b = self.label_block(label);
                self.terminate(Term::Jump(b));
                self.cur = b;
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }

    fn lower_barrier(&mut self, kind: CStmtKind, span: Option<usize>) {
        let bar = self.new_block();
        let after = self.new_block();
        self.terminate(Term::Jump(bar));
        self.cur = bar;
        self.push(kind, span);
        self.terminate(Term::Jump(after));
        self.cur = after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("__global__ void k(int* out, int n) {{ {body} }}");
        Cfg::build(&parse_kernel(&src).expect("parse"))
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let c = cfg_of("int a = 1; out[0] = a;");
        assert_eq!(c.blocks[0].stmts.len(), 2);
        assert!(matches!(c.blocks[0].term, Term::Jump(t) if t == c.exit));
    }

    #[test]
    fn barriers_get_their_own_blocks() {
        let c = cfg_of("out[0] = 1; __syncthreads(); out[1] = 2;");
        let barriers: Vec<usize> = (0..c.blocks.len())
            .filter(|&b| c.blocks[b].is_barrier())
            .collect();
        assert_eq!(barriers.len(), 1);
        assert_eq!(c.blocks[barriers[0]].stmts.len(), 1);
    }

    #[test]
    fn if_branch_control_dependence() {
        let c = cfg_of("if (n > 0) { out[0] = 1; } out[1] = 2;");
        let deps = c.control_deps();
        // The then-block depends on the branch; the after-block does not.
        let then_block = match c.blocks[0].term {
            Term::Branch { t, .. } => t,
            _ => panic!("expected branch"),
        };
        assert_eq!(deps[then_block].len(), 1);
        assert!(deps[then_block][0].polarity);
        let after = match c.blocks[then_block].term {
            Term::Jump(a) => a,
            _ => panic!("expected jump"),
        };
        assert!(deps[after].is_empty());
    }

    #[test]
    fn barrier_inside_loop_depends_on_loop_condition() {
        let c = cfg_of("for (int i = 0; i < n; i += 1) { __syncthreads(); }");
        let deps = c.control_deps();
        let bar = (0..c.blocks.len())
            .find(|&b| c.blocks[b].is_barrier())
            .expect("barrier block");
        assert!(
            deps[bar].iter().any(|d| d.polarity),
            "barrier must depend on the loop condition"
        );
    }

    #[test]
    fn barrier_free_reach_stops_at_barriers() {
        let c = cfg_of("out[0] = 1; __syncthreads(); out[1] = 2;");
        let reach = c.barrier_free_reach(0);
        let after_bar = (0..c.blocks.len())
            .find(|&b| c.blocks[b].is_barrier())
            .map(|b| c.blocks[b].term.succs()[0])
            .expect("after");
        assert!(!reach[after_bar], "reach must not cross the barrier");
    }

    #[test]
    fn phase_starts_include_entry_and_barrier_successors() {
        let c = cfg_of("out[0] = 1; __syncthreads(); out[1] = 2;");
        let starts = c.phase_starts();
        assert!(starts.contains(&0));
        assert_eq!(starts.len(), 2);
    }

    #[test]
    fn goto_forward_and_label() {
        let c = cfg_of("if (n < 0) goto end; out[0] = 1; end: out[1] = 2;");
        // All blocks must have terminators and the label block is shared.
        assert!(c
            .blocks
            .iter()
            .all(|b| !b.term.succs().contains(&usize::MAX)));
    }

    #[test]
    fn switch_lowers_to_dispatch_chain() {
        let c = cfg_of("switch (n) { case 0: out[0] = 1; break; default: out[0] = 2; }");
        let branches = c
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::Branch { .. }))
            .count();
        assert_eq!(branches, 1);
    }
}
