//! Conformance of horizontally fused intra-family pairs: each pair fuses at
//! even and uneven partitions and must reproduce both CPU references
//! exactly, on both interpreter arms, with the sanitizer enabled.

use hfuse_conformance::{check_fused, ARMS};
use hfuse_kernels::AnyBenchmark;

fn by_name(name: &str) -> AnyBenchmark {
    AnyBenchmark::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .scaled(0.25)
}

fn check_pair(a: &str, b: &str) {
    let (a, b) = (by_name(a), by_name(b));
    // Even, uneven, and reversed-uneven partitions of a 512 block; the
    // uneven splits exercise non-power-of-two partition sizes (e.g. Dot's
    // tree reduction over 384 threads).
    for (d1, d2) in [(256, 256), (384, 128), (128, 384)] {
        for arm in ARMS {
            check_fused(&a, &b, d1, d2, arm).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn blas_axpy_dot_fused_matches_references() {
    check_pair("Axpy", "Dot");
}

#[test]
fn blas_axpy_gemv_fused_matches_references() {
    check_pair("Axpy", "Gemv");
}

#[test]
fn blas_dot_gemv_fused_matches_references() {
    check_pair("Dot", "Gemv");
}

#[test]
fn image_blur_downsample_fused_matches_references() {
    check_pair("Blur", "Downsample");
}

#[test]
fn attention_self_pair_fused_matches_references() {
    // The attention family has one kernel; fusing two instances (separate
    // buffers, renamed __shared__ tiles) still covers the family's fused
    // behaviour: partial barriers inside loops on both sides.
    check_pair("Attention", "Attention");
}
