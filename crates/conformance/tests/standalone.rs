//! Simulator-vs-reference conformance for every benchmark kernel run
//! standalone, on both interpreter arms, with the sanitizer enabled.

use hfuse_conformance::{check_standalone, ARMS};
use hfuse_kernels::AnyBenchmark;

fn sweep(benches: Vec<AnyBenchmark>, factor: f64) {
    for b in benches {
        let b = b.scaled(factor);
        for arm in ARMS {
            check_standalone(&b, arm).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn family_kernels_match_references_on_both_arms() {
    sweep(AnyBenchmark::families(), 0.25);
}

#[test]
fn paper_kernels_match_references_on_both_arms() {
    sweep(AnyBenchmark::all(), 0.25);
}

#[test]
fn extension_kernels_match_references_on_both_arms() {
    sweep(AnyBenchmark::extensions(), 0.25);
}
