//! Conformance of the cross-family pair matrix: for each pair drawn from
//! two different kernel families, run the fusion-config search and re-run
//! the winning kernel functionally on both interpreter arms (sanitizer on),
//! checking both outputs against their CPU references.

use hfuse_conformance::{check_search_winner, conformance_search_options};
use hfuse_kernels::AnyBenchmark;

fn check(a: &str, b: &str) {
    let a = AnyBenchmark::by_name(a).unwrap().scaled(0.25);
    let b = AnyBenchmark::by_name(b).unwrap().scaled(0.25);
    check_search_winner(&a, &b, conformance_search_options()).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn blas_x_image_axpy_blur() {
    check("Axpy", "Blur");
}

#[test]
fn blas_x_image_dot_downsample() {
    check("Dot", "Downsample");
}

#[test]
fn blas_x_image_gemv_blur() {
    check("Gemv", "Blur");
}

#[test]
fn blas_x_attn_axpy_attention() {
    check("Axpy", "Attention");
}

#[test]
fn blas_x_attn_dot_attention() {
    check("Dot", "Attention");
}

#[test]
fn blas_x_attn_gemv_attention() {
    check("Gemv", "Attention");
}

#[test]
fn image_x_attn_downsample_attention() {
    check("Downsample", "Attention");
}
