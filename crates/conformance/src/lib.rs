#![warn(missing_docs)]

//! CPU-reference conformance harness.
//!
//! Every benchmark kernel carries a pure-Rust scalar reference
//! ([`hfuse_kernels::Benchmark::check`]) written to mirror the simulator's
//! f32 semantics expression-for-expression, so most kernels must agree
//! *bitwise* (the rest within a stated tolerance). This crate turns that
//! property into a reusable harness:
//!
//! * [`check_standalone`] — one kernel, simulator vs. reference;
//! * [`check_fused`] — a pair fused by [`horizontal_fuse`] at an explicit
//!   thread partition, both outputs checked;
//! * [`check_search_winner`] — the winning configuration of the Fig. 6
//!   search ([`Session::search_winner`]) re-run functionally, both outputs
//!   checked.
//!
//! Each check runs with the race/barrier sanitizer enabled and fails if it
//! reports anything, and can be driven on either interpreter arm
//! ([`Arm::Scalar`] or [`Arm::Vector`]) — programmatically, independent of
//! the `HFUSE_SIM_NO_VECTOR` environment override. The conformance test
//! suite in `tests/` sweeps every kernel family (BLAS, image stencil,
//! attention) plus the paper set through all of the above under both arms.

use gpu_sim::{Gpu, GpuConfig, Launch};
use hfuse_core::fuse::horizontal_fuse;
use hfuse_core::{FusionInput, SearchOptions, Session};
use hfuse_kernels::{AnyBenchmark, Benchmark};
use thread_ir::lower_kernel;

/// Which interpreter the simulator executes warps with. Results must be
/// identical on both; conformance runs everything twice to prove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Scalar per-lane interpreter (the `HFUSE_SIM_NO_VECTOR=1` path).
    Scalar,
    /// Lane-vectorized interpreter (the default path).
    Vector,
}

/// Both interpreter arms, in the order conformance sweeps them.
pub const ARMS: [Arm; 2] = [Arm::Scalar, Arm::Vector];

impl Arm {
    fn apply(self, gpu: &mut Gpu) {
        gpu.set_vector_exec(self == Arm::Vector);
    }
}

/// Search options sized for conformance runs: a small fused block and the
/// paper's partition step keep the candidate sweep cheap while still
/// exercising uneven partitions.
pub fn conformance_search_options() -> SearchOptions {
    SearchOptions {
        d0: 512,
        granularity: 128,
        ..SearchOptions::default()
    }
}

fn fresh_gpu(arm: Arm) -> Gpu {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    arm.apply(&mut gpu);
    gpu.enable_sanitizer();
    gpu
}

fn sanitizer_clean(gpu: &Gpu, what: &str) -> Result<(), String> {
    let reports = gpu.sanitizer_reports();
    if reports.is_empty() {
        return Ok(());
    }
    Err(format!(
        "{what}: sanitizer reported {} finding(s), first: {}",
        reports.len(),
        reports[0]
    ))
}

fn dims(b: &dyn Benchmark, threads: u32) -> Result<(u32, u32, u32), String> {
    b.shape()
        .dims(threads)
        .ok_or_else(|| format!("{}: no block shape for {threads} threads", b.name()))
}

/// Runs one benchmark standalone on `arm` and checks its output against the
/// CPU reference, with the sanitizer on.
///
/// # Errors
///
/// Returns the first mismatch, simulation fault, or sanitizer finding.
pub fn check_standalone(b: &AnyBenchmark, arm: Arm) -> Result<(), String> {
    let bench = b.benchmark();
    let mut gpu = fresh_gpu(arm);
    let args = bench.setup(gpu.memory_mut());
    let launch = Launch {
        kernel: lower_kernel(&bench.kernel())
            .map_err(|e| format!("{}: lower: {e}", bench.name()))?
            .into(),
        grid_dim: bench.grid_dim(),
        block_dim: dims(bench, bench.default_threads())?,
        dynamic_shared_bytes: bench.dynamic_shared(),
        args: args.clone(),
    };
    gpu.run_functional(&[launch])
        .map_err(|e| format!("{}: run: {e}", bench.name()))?;
    bench
        .check(gpu.memory(), &args)
        .map_err(|e| format!("{} ({arm:?}): {e}", bench.name()))?;
    sanitizer_clean(&gpu, bench.name())
}

/// Fuses `a` and `b` at partition `(d1, d2)`, runs the fused kernel on
/// `arm`, and checks both outputs against their CPU references, with the
/// sanitizer on.
///
/// # Errors
///
/// Returns the first fusion failure, mismatch, fault, or sanitizer finding.
pub fn check_fused(
    a: &AnyBenchmark,
    b: &AnyBenchmark,
    d1: u32,
    d2: u32,
    arm: Arm,
) -> Result<(), String> {
    let (ba, bb) = (a.benchmark(), b.benchmark());
    let pair = format!("{}+{} at {d1}/{d2} ({arm:?})", ba.name(), bb.name());
    let fused = horizontal_fuse(&ba.kernel(), dims(ba, d1)?, &bb.kernel(), dims(bb, d2)?)
        .map_err(|e| format!("{pair}: fuse: {e}"))?;
    let mut gpu = fresh_gpu(arm);
    let args_a = ba.setup(gpu.memory_mut());
    let args_b = bb.setup(gpu.memory_mut());
    let mut args = args_a.clone();
    args.extend(args_b.iter().copied());
    gpu.run_functional(&[Launch {
        kernel: lower_kernel(&fused.function)
            .map_err(|e| format!("{pair}: lower: {e}"))?
            .into(),
        grid_dim: ba.grid_dim().max(bb.grid_dim()),
        block_dim: (fused.block_threads(), 1, 1),
        dynamic_shared_bytes: ba.dynamic_shared() + bb.dynamic_shared(),
        args,
    }])
    .map_err(|e| format!("{pair}: run: {e}"))?;
    ba.check(gpu.memory(), &args_a)
        .map_err(|e| format!("{pair}: first output: {e}"))?;
    bb.check(gpu.memory(), &args_b)
        .map_err(|e| format!("{pair}: second output: {e}"))?;
    sanitizer_clean(&gpu, &pair)
}

/// Runs the fusion-config search for `a`+`b`, then re-runs the winning
/// kernel *functionally* on both interpreter arms (sanitizer on) and checks
/// both outputs against their CPU references.
///
/// The search itself profiles on sanitizer-free clones — the conformance
/// claim is about the winner the search hands back, so that is what runs
/// under the sanitizer.
///
/// # Errors
///
/// Returns the first search failure, mismatch, fault, or sanitizer finding.
pub fn check_search_winner(
    a: &AnyBenchmark,
    b: &AnyBenchmark,
    opts: SearchOptions,
) -> Result<(), String> {
    let (ba, bb) = (a.benchmark(), b.benchmark());
    let pair = format!("{}+{}", ba.name(), bb.name());
    let mut base = Gpu::new(GpuConfig::test_tiny());
    let in1 = ba.fusion_input(base.memory_mut());
    let in2 = bb.fusion_input(base.memory_mut());
    // The search runs through the memoized session query (same path the CLI
    // and benches use); the functional re-run below stays on the raw device.
    let mut session = Session::with_gpu(base.clone());
    session.set_search_options(opts);
    let ka = session.add_fusion_input(&in1);
    let kb = session.add_fusion_input(&in2);
    let report = session
        .search_winner(ka, kb)
        .map_err(|e| format!("{pair}: search: {e}"))?;
    let best = report.best();
    let winner = format!("{pair} winner d1={} d2={}", best.d1, best.d2);
    for arm in ARMS {
        // Clone the pre-search device state so each arm starts from the
        // untouched inputs (some kernels update buffers in place).
        let mut gpu = base.clone();
        arm.apply(&mut gpu);
        gpu.enable_sanitizer();
        run_winner(&mut gpu, &report.best_kernel, best.d1 + best.d2, &in1, &in2)
            .map_err(|e| format!("{winner} ({arm:?}): run: {e}"))?;
        ba.check(gpu.memory(), &in1.args)
            .map_err(|e| format!("{winner} ({arm:?}): first output: {e}"))?;
        bb.check(gpu.memory(), &in2.args)
            .map_err(|e| format!("{winner} ({arm:?}): second output: {e}"))?;
        sanitizer_clean(&gpu, &format!("{winner} ({arm:?})"))?;
    }
    Ok(())
}

fn run_winner(
    gpu: &mut Gpu,
    kernel: &thread_ir::KernelIr,
    block_threads: u32,
    in1: &FusionInput,
    in2: &FusionInput,
) -> Result<(), String> {
    let mut args = in1.args.clone();
    args.extend(in2.args.iter().copied());
    gpu.run_functional(&[Launch {
        kernel: kernel.clone().into(),
        grid_dim: in1.grid_dim.max(in2.grid_dim),
        block_dim: (block_threads, 1, 1),
        dynamic_shared_bytes: in1.dynamic_shared + in2.dynamic_shared,
        args,
    }])
    .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_cover_both_interpreters() {
        let mut gpu = fresh_gpu(Arm::Scalar);
        assert!(!gpu.vector_exec());
        assert!(gpu.sanitizer_enabled());
        Arm::Vector.apply(&mut gpu);
        assert!(gpu.vector_exec());
    }

    #[test]
    fn conformance_options_are_small() {
        let opts = conformance_search_options();
        assert_eq!(opts.d0, 512);
        assert_eq!(opts.granularity, 128);
    }

    #[test]
    fn a_failing_check_reports_the_kernel_and_arm() {
        // Fusing a pair whose partition starves the first kernel is not an
        // error, but an impossible block shape is.
        let b = AnyBenchmark::by_name("Batchnorm").unwrap(); // Rows { y: 16 }
        let m = AnyBenchmark::by_name("Maxpool").unwrap();
        let err = check_fused(&b, &m, 8, 504, Arm::Scalar).unwrap_err();
        assert!(err.contains("Batchnorm"), "{err}");
    }
}
