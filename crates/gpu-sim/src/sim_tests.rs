//! Additional behavioural tests of the simulator: coalescing accounting,
//! barrier reuse, shuffle widths, atomic types, divergence patterns, and
//! 64-bit datapaths. Kept in a separate module to keep `timing.rs` focused.

#![cfg(test)]

use cuda_frontend::parse_kernel;
use thread_ir::lower_kernel;

use crate::config::GpuConfig;
use crate::launch::{Launch, ParamValue};
use crate::timing::Gpu;

fn compile(src: &str) -> thread_ir::KernelIr {
    lower_kernel(&parse_kernel(src).expect("parse")).expect("lower")
}

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::test_tiny())
}

#[test]
fn coalesced_loads_cost_fewer_transactions_than_strided() {
    let run = |stride: i32| {
        let ir = compile(
            "__global__ void k(float* out, float* in, int stride) {\
               int i = threadIdx.x;\
               out[i] = in[i * stride];\
             }",
        );
        let mut gpu = gpu();
        let inp = gpu.memory_mut().alloc_f32(32 * 64);
        let out = gpu.memory_mut().alloc_f32(64);
        let launch = Launch {
            kernel: ir.into(),
            grid_dim: 1,
            block_dim: (64, 1, 1),
            dynamic_shared_bytes: 0,
            args: vec![
                ParamValue::Ptr(out),
                ParamValue::Ptr(inp),
                ParamValue::I32(stride),
            ],
        };
        gpu.run(&[launch]).expect("run").metrics.mem_transactions
    };
    let sequential = run(1);
    let strided = run(32);
    assert!(
        strided >= sequential * 8,
        "stride-32 loads must generate far more transactions: {strided} vs {sequential}"
    );
}

#[test]
fn barrier_in_loop_resets_arrival_counter() {
    // Each iteration all threads synchronize twice; the counter must reset
    // between phases or the second iteration would deadlock/misfire.
    let ir = compile(
        "__global__ void k(int* out, int rounds) {\
           __shared__ int s[1];\
           int t = threadIdx.x;\
           int acc = 0;\
           for (int r = 0; r < rounds; r++) {\
             if (t == r % 64) { s[0] = r * 10 + 1; }\
             __syncthreads();\
             acc += s[0];\
             __syncthreads();\
           }\
           out[t] = acc;\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(64);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (64, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::I32(5)],
    };
    gpu.run(&[launch]).expect("run");
    let want: u32 = (0..5).map(|r| r * 10 + 1).sum();
    for (i, v) in gpu.memory().read_u32s(out).iter().enumerate() {
        assert_eq!(*v, want, "thread {i}");
    }
}

#[test]
fn partial_barriers_with_distinct_ids_do_not_interfere() {
    // Two independent 32-thread groups each use their own barrier id; a
    // shared counter checks they both made exactly their own rounds.
    let ir = compile(
        "__global__ void k(unsigned int* out, int rounds) {\
           __shared__ unsigned int a[1];\
           __shared__ unsigned int b[1];\
           int t = threadIdx.x;\
           if (t < 32) {\
             for (int r = 0; r < rounds; r++) {\
               if (t == 0) { atomicAdd(&a[0], 1u); }\
               asm(\"bar.sync 1, 32;\");\
             }\
             out[t] = a[0];\
           } else {\
             for (int r = 0; r < rounds * 2; r++) {\
               if (t == 32) { atomicAdd(&b[0], 1u); }\
               asm(\"bar.sync 2, 32;\");\
             }\
             out[t] = b[0];\
           }\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(64);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (64, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::I32(3)],
    };
    gpu.run(&[launch]).expect("run");
    let v = gpu.memory().read_u32s(out);
    assert!(v[..32].iter().all(|&x| x == 3), "{v:?}");
    assert!(v[32..].iter().all(|&x| x == 6), "{v:?}");
}

#[test]
fn shuffle_width_subgroups() {
    // Width-16 xor reduction sums within each half-warp independently.
    let ir = compile(
        "__global__ void k(unsigned int* out) {\
           unsigned int v = threadIdx.x;\
           for (int i = 8; i > 0; i = i / 2) {\
             v += __shfl_xor_sync(0xffffffffu, v, i, 16);\
           }\
           out[threadIdx.x] = v;\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(32);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out)],
    };
    gpu.run(&[launch]).expect("run");
    let v = gpu.memory().read_u32s(out);
    let low: u32 = (0..16).sum();
    let high: u32 = (16..32).sum();
    assert!(v[..16].iter().all(|&x| x == low), "{v:?}");
    assert!(v[16..].iter().all(|&x| x == high), "{v:?}");
}

#[test]
fn shfl_down_shifts_within_width() {
    let ir = compile(
        "__global__ void k(unsigned int* out) {\
           unsigned int v = threadIdx.x;\
           out[threadIdx.x] = __shfl_down_sync(0xffffffffu, v, 1u, 32);\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(32);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out)],
    };
    gpu.run(&[launch]).expect("run");
    let v = gpu.memory().read_u32s(out);
    assert_eq!(v[0], 1);
    assert_eq!(v[30], 31);
    // The last lane has no source below it and keeps its own value.
    assert_eq!(v[31], 31);
}

#[test]
fn float_atomic_add_accumulates() {
    let ir = compile("__global__ void k(float* sum) { atomicAdd(&sum[0], 0.5f); }");
    let mut gpu = gpu();
    let sum = gpu.memory_mut().alloc_f32(1);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 2,
        block_dim: (64, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(sum)],
    };
    gpu.run(&[launch]).expect("run");
    assert_eq!(gpu.memory().read_f32(sum, 0), 64.0);
}

#[test]
fn sixty_four_bit_loads_and_arithmetic() {
    let ir = compile(
        "__global__ void k(unsigned long long* out, unsigned long long* in) {\
           int i = threadIdx.x;\
           out[i] = in[i] * 2654435761ull + (unsigned long long)i;\
         }",
    );
    let mut gpu = gpu();
    let data: Vec<u64> = (0..32).map(|i| (i as u64) << 40 | 7).collect();
    let inp = gpu.memory_mut().alloc_from_u64(&data);
    let out = gpu.memory_mut().alloc_u64(32);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::Ptr(inp)],
    };
    gpu.run(&[launch]).expect("run");
    for (i, v) in gpu.memory().read_u64s(out).iter().enumerate() {
        let want = data[i].wrapping_mul(2654435761).wrapping_add(i as u64);
        assert_eq!(*v, want, "lane {i}");
    }
}

#[test]
fn per_thread_loop_trip_counts_diverge_and_reconverge() {
    // Thread t iterates t times; afterwards all threads store. Verifies the
    // min-PC stepper handles ragged loop exits.
    let ir = compile(
        "__global__ void k(unsigned int* out) {\
           unsigned int acc = 0u;\
           for (int i = 0; i < threadIdx.x; i++) { acc += (unsigned int)i; }\
           out[threadIdx.x] = acc + 100u;\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(32);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out)],
    };
    gpu.run(&[launch]).expect("run");
    for (t, v) in gpu.memory().read_u32s(out).iter().enumerate() {
        let want: u32 = (0..t as u32).sum::<u32>() + 100;
        assert_eq!(*v, want, "thread {t}");
    }
}

#[test]
fn local_arrays_are_private_per_thread() {
    let ir = compile(
        "__global__ void k(unsigned int* out) {\
           unsigned int scratch[4];\
           for (int i = 0; i < 4; i++) { scratch[i] = threadIdx.x * 10u + (unsigned int)i; }\
           out[threadIdx.x] = scratch[3];\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(64);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (64, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out)],
    };
    gpu.run(&[launch]).expect("run");
    for (t, v) in gpu.memory().read_u32s(out).iter().enumerate() {
        assert_eq!(*v, t as u32 * 10 + 3, "thread {t}");
    }
}

#[test]
fn do_while_executes_body_at_least_once() {
    let ir = compile(
        "__global__ void k(unsigned int* out, int n) {\
           unsigned int count = 0u;\
           int i = n;\
           do { count += 1u; i = i - 1; } while (i > 0);\
           out[threadIdx.x] = count;\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(32);
    // n = 0: condition false immediately, but the body must run once.
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::I32(0)],
    };
    gpu.run(&[launch]).expect("run");
    assert!(gpu.memory().read_u32s(out).iter().all(|&v| v == 1));
}

#[test]
fn launch_overlap_is_reported_per_launch() {
    // Launches on parallel streams may overlap, so a racy read-modify-write
    // would lose updates; atomics make the cross-launch accumulation exact.
    let ir = compile(
        "__global__ void k(float* p, int n) {\
           int i = blockIdx.x * blockDim.x + threadIdx.x;\
           if (i < n) { atomicAdd(&p[i], 1.0f); }\
         }",
    );
    let mut gpu = gpu();
    let p = gpu.memory_mut().alloc_f32(512);
    let mk = || Launch {
        kernel: ir.clone().into(),
        grid_dim: 4,
        block_dim: (128, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(p), ParamValue::I32(512)],
    };
    let r = gpu.run(&[mk(), mk(), mk()]).expect("run");
    assert_eq!(r.launch_finish.len(), 3);
    // Overlapping streams give no cross-launch ordering guarantee; each
    // launch just has to finish within the run.
    for i in 0..3 {
        assert!(r.launch_cycles(i) > 0);
        assert!(r.launch_cycles(i) <= r.total_cycles);
    }
    // All three launches incremented every element exactly once.
    assert!(gpu.memory().read_f32s(p).iter().all(|&v| v == 3.0));
}

#[test]
fn traced_run_produces_samples_matching_totals() {
    let ir = compile(
        "__global__ void k(float* p, int n) {\
           int i = blockIdx.x * blockDim.x + threadIdx.x;\
           float acc = 0.0f;\
           for (int j = 0; j < 64; j++) { acc += p[(i + j) % n]; }\
           p[i % n] = acc;\
         }",
    );
    let mut gpu = gpu();
    let p = gpu.memory_mut().alloc_f32(2048);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 8,
        block_dim: (256, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(p), ParamValue::I32(2048)],
    };
    let (result, trace) = gpu.run_traced(&[launch], 256).expect("traced run");
    assert!(!trace.is_empty());
    // Samples cover the run and are ordered.
    assert!(trace.windows(2).all(|w| w[0].cycle < w[1].cycle));
    assert!(trace.last().expect("nonempty").cycle <= result.total_cycles + 256);
    for s in &trace {
        assert!((0.0..=100.0).contains(&s.issue_util), "{s:?}");
        assert!(s.avg_warps >= 0.0);
    }
    // The utilization seen in windows should bracket the aggregate.
    let max = trace.iter().map(|s| s.issue_util).fold(0.0, f64::max);
    assert!(max + 1e-9 >= result.metrics.issue_slot_utilization());
}

#[test]
fn bit_intrinsics_compute_correctly() {
    let ir = compile(
        "__global__ void k(unsigned int* out, unsigned int* in) {\
           unsigned int v = in[threadIdx.x];\
           out[threadIdx.x * 3u] = (unsigned int)__popc(v);\
           out[threadIdx.x * 3u + 1u] = (unsigned int)__clz(v);\
           out[threadIdx.x * 3u + 2u] = __brev(v);\
         }",
    );
    let mut gpu = gpu();
    let data: Vec<u32> = (0..32)
        .map(|i| (i as u32).wrapping_mul(0x9e37_79b9) | 1)
        .collect();
    let inp = gpu.memory_mut().alloc_from_u32(&data);
    let out = gpu.memory_mut().alloc_u32(96);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::Ptr(inp)],
    };
    gpu.run(&[launch]).expect("run");
    let v = gpu.memory().read_u32s(out);
    for (i, &x) in data.iter().enumerate() {
        assert_eq!(v[i * 3], x.count_ones(), "popc lane {i}");
        assert_eq!(v[i * 3 + 1], x.leading_zeros(), "clz lane {i}");
        assert_eq!(v[i * 3 + 2], x.reverse_bits(), "brev lane {i}");
    }
}

#[test]
fn switch_dispatch_fallthrough_and_break() {
    let ir = compile(
        "__global__ void k(unsigned int* out) {\
           int t = threadIdx.x;\
           unsigned int v = 0u;\
           switch (t % 4) {\
             case 0: v = 100u; break;\
             case 1: v = 200u;\
             case 2: v += 11u; break;\
             default: v = 900u;\
           }\
           out[t] = v;\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(32);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out)],
    };
    gpu.run(&[launch]).expect("run");
    let v = gpu.memory().read_u32s(out);
    for (t, &got) in v.iter().enumerate().take(32) {
        let want = match t % 4 {
            0 => 100, // break
            1 => 211, // falls through into case 2
            2 => 11,  // case 2 directly
            _ => 900, // default
        };
        assert_eq!(got, want, "thread {t}");
    }
}

#[test]
fn continue_inside_switch_targets_enclosing_loop() {
    let ir = compile(
        "__global__ void k(unsigned int* out, int n) {\
           unsigned int acc = 0u;\
           for (int i = 0; i < n; i++) {\
             switch (i % 2) {\
               case 0: continue;\
               default: acc += (unsigned int)i;\
             }\
             acc += 100u;\
           }\
           out[threadIdx.x] = acc;\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(32);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::I32(6)],
    };
    gpu.run(&[launch]).expect("run");
    // odd i: acc += i then += 100 → i=1,3,5 → 9 + 300 = 309
    assert!(gpu.memory().read_u32s(out).iter().all(|&v| v == 309));
}

#[test]
fn warp_votes_ballot_any_all() {
    let ir = compile(
        "__global__ void k(unsigned int* out) {\
           int t = threadIdx.x;\
           unsigned int b = __ballot_sync(0xffffffffu, t % 2 == 0);\
           int anyv = __any_sync(0xffffffffu, t == 5);\
           int allv = __all_sync(0xffffffffu, t < 32);\
           int none = __all_sync(0xffffffffu, t > 100);\
           out[t * 4u] = b;\
           out[t * 4u + 1u] = (unsigned int)anyv;\
           out[t * 4u + 2u] = (unsigned int)allv;\
           out[t * 4u + 3u] = (unsigned int)none;\
         }",
    );
    let mut gpu = gpu();
    let out = gpu.memory_mut().alloc_u32(128);
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: 1,
        block_dim: (32, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out)],
    };
    gpu.run(&[launch]).expect("run");
    let v = gpu.memory().read_u32s(out);
    for t in 0..32 {
        assert_eq!(v[t * 4], 0x5555_5555, "ballot lane {t}");
        assert_eq!(v[t * 4 + 1], 1, "any lane {t}");
        assert_eq!(v[t * 4 + 2], 1, "all lane {t}");
        assert_eq!(v[t * 4 + 3], 0, "none lane {t}");
    }
}
