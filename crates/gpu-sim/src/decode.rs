//! Launch-time pre-decoding of [`KernelIr`] into a flat instruction buffer.
//!
//! The interpreter's hot path used to re-derive per-issue facts — source
//! registers, the address register of memory instructions, whether an
//! instruction is a candidate for uniform execution — from the `Inst` enum
//! on every issued group. [`DecodedKernel`] computes them once per launch
//! and stores them in one contiguous `Box<[DecodedInst]>` indexed by PC, so
//! the per-issue work is a single cache-friendly array load.

use thread_ir::ir::{Inst, KernelIr, SpecialReg};

/// Marker for "this instruction has no address register".
pub const NO_REG: u32 = u32::MAX;

/// One pre-decoded instruction: the instruction itself (copied inline) plus
/// issue metadata derived once at launch time.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInst {
    /// The instruction (all operands inline; `Inst` is `Copy`).
    pub inst: Inst,
    /// Register holding the memory address for `Ld`/`St`/`Atom`
    /// ([`NO_REG`] for non-memory instructions).
    pub addr_reg: u32,
    /// Whether the warp-uniform fast path may apply: the result is a pure
    /// function of the source-register values (or of block-uniform
    /// geometry), so when every active lane reads identical operands the
    /// instruction can be evaluated once and broadcast to the group.
    pub uniform_eligible: bool,
    /// Whether static uniformity dataflow proved every source register
    /// warp-uniform here (and the enclosing control flow uniform), so the
    /// fast path may broadcast without the per-operand runtime comparison.
    /// Implies `uniform_eligible`.
    pub statically_uniform: bool,
}

/// A kernel pre-decoded into a flat, cache-friendly instruction buffer,
/// built once per launch and shared by every block of that launch.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    /// Decoded instructions, indexed by PC.
    pub insts: Box<[DecodedInst]>,
    /// Whether register-pure instructions run on the lane-vectorized
    /// interpreter (branch-free masked loops over the SoA lane rows) or on
    /// the scalar per-lane reference path. Both are bit-identical; the
    /// scalar path exists as the `HFUSE_SIM_NO_VECTOR` escape hatch.
    pub vector: bool,
}

/// True for special registers whose value is identical for every thread of
/// a block (block geometry and this block's own index).
fn block_uniform_special(reg: SpecialReg) -> bool {
    matches!(
        reg,
        SpecialReg::BlockIdxX
            | SpecialReg::BlockIdxY
            | SpecialReg::BlockIdxZ
            | SpecialReg::BlockDimX
            | SpecialReg::BlockDimY
            | SpecialReg::BlockDimZ
            | SpecialReg::GridDimX
            | SpecialReg::GridDimY
            | SpecialReg::GridDimZ
    )
}

impl DecodedKernel {
    /// Pre-decodes `kernel`. When `uniform_exec` is false every
    /// `uniform_eligible` flag is cleared, which disables the fast path
    /// without touching the interpreter; when `vector_exec` is false the
    /// interpreter runs its scalar per-lane reference loops instead of the
    /// lane-vectorized ones (both are escape hatches for differential
    /// testing).
    pub fn new(kernel: &KernelIr, uniform_exec: bool, vector_exec: bool) -> Self {
        // One pass of interprocedural-free dataflow per launch; proves for
        // each PC whether all operands (and the control flow reaching it)
        // are uniform across the block, letting the fast path skip its
        // per-operand runtime comparison on those instructions.
        let static_uniform = if uniform_exec {
            hfuse_analysis::ir_uniform::uniform_insts(kernel)
        } else {
            vec![false; kernel.insts.len()]
        };
        let insts = kernel
            .insts
            .iter()
            .zip(&static_uniform)
            .map(|(inst, &stat_u)| {
                let addr_reg = match inst {
                    Inst::Ld { addr, .. } | Inst::St { addr, .. } | Inst::Atom { addr, .. } => {
                        *addr
                    }
                    _ => NO_REG,
                };
                // Register-pure ALU forms broadcast when their operands are
                // lane-uniform; `Special` reads of block geometry are
                // uniform by construction. Everything else (memory, control
                // flow, shuffles, votes, barriers) either has side effects
                // per lane or per-lane semantics and always runs scalar.
                let uniform_eligible = uniform_exec
                    && match inst {
                        Inst::Mov { .. }
                        | Inst::Bin { .. }
                        | Inst::Un { .. }
                        | Inst::Cast { .. } => true,
                        Inst::Special { reg, .. } => block_uniform_special(*reg),
                        _ => false,
                    };
                DecodedInst {
                    inst: *inst,
                    addr_reg,
                    uniform_eligible,
                    statically_uniform: uniform_eligible && stat_u,
                }
            })
            .collect();
        DecodedKernel {
            insts,
            vector: vector_exec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thread_ir::ir::{BinIr, ParamKind, ScalarTy};

    fn mk_kernel(insts: Vec<Inst>) -> KernelIr {
        KernelIr {
            name: "t".into(),
            insts,
            num_regs: 8,
            params: vec![ParamKind::Pointer],
            shared_static_bytes: 0,
            uses_dynamic_shared: false,
            dynamic_shared_offset: 0,
            local_bytes: 0,
            spilled_regs: Vec::new(),
            pressure: 8,
        }
    }

    #[test]
    fn decode_extracts_addr_reg_and_uniform_flags() {
        let k = mk_kernel(vec![
            Inst::Bin {
                op: BinIr::Add,
                ty: ScalarTy::I32,
                dst: 0,
                a: 1,
                b: 2,
            },
            Inst::Ld {
                ty: ScalarTy::F32,
                dst: 3,
                addr: 4,
            },
            Inst::Special {
                dst: 5,
                reg: SpecialReg::ThreadIdxX,
            },
            Inst::Special {
                dst: 5,
                reg: SpecialReg::BlockIdxX,
            },
            Inst::Ret,
        ]);
        let d = DecodedKernel::new(&k, true, true);
        assert_eq!(d.insts.len(), 5);
        assert!(d.insts[0].uniform_eligible);
        assert_eq!(d.insts[0].addr_reg, NO_REG);
        assert!(!d.insts[1].uniform_eligible, "loads never broadcast");
        assert_eq!(d.insts[1].addr_reg, 4);
        assert!(!d.insts[2].uniform_eligible, "threadIdx is per-lane");
        assert!(d.insts[3].uniform_eligible, "blockIdx is block-uniform");
        assert!(!d.insts[4].uniform_eligible);
    }

    #[test]
    fn decode_with_uniform_disabled_clears_all_flags() {
        let k = mk_kernel(vec![
            Inst::Mov { dst: 0, src: 1 },
            Inst::Special {
                dst: 2,
                reg: SpecialReg::GridDimX,
            },
        ]);
        let d = DecodedKernel::new(&k, false, true);
        assert!(d.insts.iter().all(|i| !i.uniform_eligible));
        assert!(d.insts.iter().all(|i| !i.statically_uniform));
    }

    #[test]
    fn static_uniformity_proves_param_chains_but_not_tid_chains() {
        let k = mk_kernel(vec![
            Inst::LdParam { dst: 0, index: 0 },
            Inst::Special {
                dst: 1,
                reg: SpecialReg::ThreadIdxX,
            },
            // Pure function of a parameter: proven uniform statically.
            Inst::Bin {
                op: BinIr::Add,
                ty: ScalarTy::I32,
                dst: 2,
                a: 0,
                b: 0,
            },
            // Mixes in threadIdx: eligible for the runtime check but not
            // statically proven.
            Inst::Bin {
                op: BinIr::Add,
                ty: ScalarTy::I32,
                dst: 3,
                a: 0,
                b: 1,
            },
            Inst::Ret,
        ]);
        let d = DecodedKernel::new(&k, true, true);
        assert!(d.insts[2].statically_uniform, "param+param is uniform");
        assert!(d.insts[3].uniform_eligible);
        assert!(!d.insts[3].statically_uniform, "param+tid is per-lane");
    }
}
