//! Central registry and parsing of the `HFUSE_*` environment switches.
//!
//! Every optimization layer in the stack ships an *escape hatch*: an
//! environment variable that forces the unoptimized reference path so the
//! two can be A/B-ed bit-for-bit. Historically each crate parsed its own
//! variables ad hoc; this module is the single place that knows the
//! convention (a boolean switch is *on* when set to anything but `"0"`) and
//! the complete list of documented hatches, so tests can enumerate them and
//! the parsing cannot drift between crates.
//!
//! The `HFUSE_NO_STATIC_CHECK` hatch lives in `hfuse-analysis`, which this
//! crate depends *on* (so it cannot call in here); it is still listed in
//! [`HATCHES`] because the registry documents the whole workspace.

/// One documented `HFUSE_*` switch.
#[derive(Debug, Clone, Copy)]
pub struct Hatch {
    /// Environment variable name.
    pub name: &'static str,
    /// What setting it does (one line, mirrors README).
    pub what: &'static str,
}

/// Every documented `HFUSE_*` environment switch in the workspace.
pub const HATCHES: &[Hatch] = &[
    Hatch {
        name: "HFUSE_SIM_NO_SKIP",
        what: "force the naive single-step simulator loop (no idle-cycle fast-forward)",
    },
    Hatch {
        name: "HFUSE_SIM_NO_UNIFORM",
        what: "disable the warp-uniform broadcast fast path in the interpreter",
    },
    Hatch {
        name: "HFUSE_SIM_NO_VECTOR",
        what: "run the per-lane scalar interpreter instead of the lane-vectorized one",
    },
    Hatch {
        name: "HFUSE_SANITIZE",
        what: "enable the race/barrier sanitizer on every device the process creates",
    },
    Hatch {
        name: "HFUSE_SEARCH_NO_PRUNE",
        what: "force exhaustive candidate profiling (no branch-and-bound budget aborts)",
    },
    Hatch {
        name: "HFUSE_SEARCH_NO_MODEL",
        what: "disable the calibrated analytic model pre-filter in the fusion search",
    },
    Hatch {
        name: "HFUSE_SEARCH_THREADS",
        what: "profiling worker count (numeric; explicit values are honored as-is)",
    },
    Hatch {
        name: "HFUSE_FUZZ_NO_SANITIZE",
        what: "skip the sanitizer replay stage of the differential fuzzer",
    },
    Hatch {
        name: "HFUSE_NO_STATIC_CHECK",
        what: "skip the static fusion-safety gate before fusing (parsed in hfuse-analysis)",
    },
    Hatch {
        name: "HFUSE_NO_BARRIER_ELIM",
        what: "keep every __syncthreads(): disable range-proven barrier elimination (AST and IR)",
    },
    Hatch {
        name: "HFUSE_FAST",
        what: "trim the benchmark sweep matrix for quick local runs",
    },
];

/// True when `name` is set to anything but `"0"` — the convention every
/// boolean `HFUSE_*` switch follows.
pub fn flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0")
}

/// Numeric `HFUSE_*` value, `None` when unset or unparseable.
pub fn parse_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// `HFUSE_SIM_NO_SKIP`: force the naive single-step cycle loop.
pub fn sim_no_skip() -> bool {
    flag("HFUSE_SIM_NO_SKIP")
}

/// `HFUSE_SIM_NO_UNIFORM`: disable the warp-uniform broadcast fast path.
pub fn sim_no_uniform() -> bool {
    flag("HFUSE_SIM_NO_UNIFORM")
}

/// `HFUSE_SIM_NO_VECTOR`: run the scalar per-lane interpreter.
pub fn sim_no_vector() -> bool {
    flag("HFUSE_SIM_NO_VECTOR")
}

/// `HFUSE_SANITIZE`: enable the sanitizer on every new device.
pub fn sanitize() -> bool {
    flag("HFUSE_SANITIZE")
}

/// `HFUSE_SEARCH_NO_PRUNE`: force exhaustive profiling in the search.
pub fn search_no_prune() -> bool {
    flag("HFUSE_SEARCH_NO_PRUNE")
}

/// `HFUSE_SEARCH_NO_MODEL`: disable the analytic model pre-filter.
pub fn search_no_model() -> bool {
    flag("HFUSE_SEARCH_NO_MODEL")
}

/// `HFUSE_SEARCH_THREADS`: explicit profiling worker count.
pub fn search_threads() -> Option<usize> {
    parse_usize("HFUSE_SEARCH_THREADS")
}

/// `HFUSE_FUZZ_NO_SANITIZE`: skip the fuzzer's sanitizer replay stage.
pub fn fuzz_no_sanitize() -> bool {
    flag("HFUSE_FUZZ_NO_SANITIZE")
}

/// `HFUSE_NO_BARRIER_ELIM`: disable range-proven barrier elimination, both
/// the AST-level pass in `horizontal_fuse` and the IR-level safety net in
/// `thread-ir` (which parses the variable itself, as it cannot depend on
/// this crate — same situation as `HFUSE_NO_STATIC_CHECK`).
pub fn no_barrier_elim() -> bool {
    flag("HFUSE_NO_BARRIER_ELIM")
}

/// `HFUSE_FAST`: trim benchmark sweeps for quick local runs.
pub fn fast() -> bool {
    flag("HFUSE_FAST")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_convention_anything_but_zero() {
        // A variable name no other test (or the harness) touches.
        std::env::set_var("HFUSE_TEST_FLAG_CONVENTION", "1");
        assert!(flag("HFUSE_TEST_FLAG_CONVENTION"));
        std::env::set_var("HFUSE_TEST_FLAG_CONVENTION", "yes");
        assert!(flag("HFUSE_TEST_FLAG_CONVENTION"));
        std::env::set_var("HFUSE_TEST_FLAG_CONVENTION", "0");
        assert!(!flag("HFUSE_TEST_FLAG_CONVENTION"));
        std::env::remove_var("HFUSE_TEST_FLAG_CONVENTION");
        assert!(!flag("HFUSE_TEST_FLAG_CONVENTION"));
    }

    #[test]
    fn numeric_values_parse_or_fall_through() {
        std::env::set_var("HFUSE_TEST_NUMERIC", "12");
        assert_eq!(parse_usize("HFUSE_TEST_NUMERIC"), Some(12));
        std::env::set_var("HFUSE_TEST_NUMERIC", "lots");
        assert_eq!(parse_usize("HFUSE_TEST_NUMERIC"), None);
        std::env::remove_var("HFUSE_TEST_NUMERIC");
        assert_eq!(parse_usize("HFUSE_TEST_NUMERIC"), None);
    }

    #[test]
    fn registry_covers_every_documented_hatch() {
        let expected = [
            "HFUSE_SIM_NO_SKIP",
            "HFUSE_SIM_NO_UNIFORM",
            "HFUSE_SIM_NO_VECTOR",
            "HFUSE_SANITIZE",
            "HFUSE_SEARCH_NO_PRUNE",
            "HFUSE_SEARCH_NO_MODEL",
            "HFUSE_SEARCH_THREADS",
            "HFUSE_FUZZ_NO_SANITIZE",
            "HFUSE_NO_STATIC_CHECK",
            "HFUSE_NO_BARRIER_ELIM",
            "HFUSE_FAST",
        ];
        assert_eq!(HATCHES.len(), expected.len());
        for name in expected {
            assert!(
                HATCHES.iter().any(|h| h.name == name),
                "{name} missing from the hatch registry"
            );
        }
        // Names are unique and follow the prefix convention.
        for (i, h) in HATCHES.iter().enumerate() {
            assert!(h.name.starts_with("HFUSE_"), "{}", h.name);
            assert!(!h.what.is_empty());
            assert!(
                HATCHES[..i].iter().all(|p| p.name != h.name),
                "duplicate hatch {}",
                h.name
            );
        }
    }

    #[test]
    fn registry_matches_workspace_readme() {
        // Every hatch must be documented in the top-level README (the
        // registry and the docs cannot drift apart silently).
        let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
        for h in HATCHES {
            assert!(
                readme.contains(h.name),
                "{} not documented in README.md",
                h.name
            );
        }
    }
}
