//! Opt-in race and barrier sanitizer: the simulator as a correctness oracle.
//!
//! HFuse's claim is that a fused kernel is semantically identical to running
//! the two originals — thread-id guards, renamed declarations, and partial
//! `bar.sync id, nthreads` barriers must compose without introducing data
//! races or barrier divergence. This module turns the simulator into the
//! checker for exactly those properties:
//!
//! * **Race detection** (shared and global memory). Every load/store/atomic
//!   is recorded in a shadow cell per 4-byte word holding the last write and
//!   the reads since that write, each stamped with the accessing thread's
//!   *barrier epochs* — per named barrier, the number of releases of that
//!   barrier the thread has participated in. Two overlapping accesses (at
//!   least one a write, not both atomic) race unless they are ordered:
//!   same thread, same warp (lockstep SIMT — the simulator executes a warp's
//!   min-PC group atomically, matching warp-synchronous code), different
//!   launches (stream order), or separated by a barrier interval: there is a
//!   named barrier `b` whose release both threads participated in between
//!   the two accesses (`cur.epochs[b] > prev.epochs[b]` and the previous
//!   accessor has itself passed that release). Accesses from different
//!   blocks of the same launch are never ordered — blocks are concurrent on
//!   real hardware even though the functional simulator serializes them.
//! * **Barrier divergence**. Hardware `bar.sync` counts *warps*: when any
//!   lane of a warp arrives, the whole warp is counted (rounded up to the
//!   warp size). A partial barrier whose declared `nthreads` does not match
//!   32 × (distinct arriving warps) — split warps, non-multiple-of-32
//!   counts, or over-subscribed releases — behaves differently on hardware
//!   than thread-count simulation suggests, so it is flagged.
//! * **Barrier count mismatch**. Two arrivals at the same barrier id within
//!   one release interval that declare different `nthreads` values.
//!
//! The sanitizer is off by default and costs nothing when disabled (the
//! execution layer carries an `Option<&mut Sanitizer>` that is `None`). Set
//! `HFUSE_SANITIZE=1` to enable it on every [`Gpu`](crate::Gpu) the process
//! creates, or call [`Gpu::enable_sanitizer`](crate::Gpu::enable_sanitizer)
//! programmatically. Reports accumulate on the device and are read back with
//! [`Gpu::sanitizer_reports`](crate::Gpu::sanitizer_reports); they never
//! abort a run.

use std::collections::{HashMap, HashSet};
use std::fmt;

use thread_ir::{MemAddr, Space};

use crate::exec::WARP_SIZE;

/// Number of named barriers (PTX `bar.sync` ids 0..=15).
pub const NUM_BARRIERS: usize = 16;

/// Reports are deduplicated, and collection stops after this many.
pub const MAX_REPORTS: usize = 256;

/// Classification of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportKind {
    /// Unordered conflicting accesses to the same shared-memory word by two
    /// threads of one block.
    SharedRace,
    /// Unordered conflicting accesses to the same global-memory word.
    GlobalRace,
    /// A partial barrier whose declared thread count does not match the
    /// warp set that arrives at it.
    BarrierDivergence,
    /// Arrivals at one barrier id declaring different thread counts within
    /// a single release interval.
    BarrierCountMismatch,
    /// A shared or global access outside the bounds of its allocation.
    OutOfBounds,
}

impl fmt::Display for ReportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReportKind::SharedRace => "shared-memory race",
            ReportKind::GlobalRace => "global-memory race",
            ReportKind::BarrierDivergence => "barrier divergence",
            ReportKind::BarrierCountMismatch => "barrier count mismatch",
            ReportKind::OutOfBounds => "out-of-bounds access",
        })
    }
}

/// One sanitizer finding.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// What went wrong.
    pub kind: ReportKind,
    /// Human-readable description (kernel, threads, addresses, pcs).
    pub message: String,
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// Identity of the executing context, passed by the execution layer with
/// every hook call.
#[derive(Debug, Clone, Copy)]
pub struct AccessCtx<'a> {
    /// Kernel name (for reports).
    pub kernel: &'a str,
    /// Launch index within the current run.
    pub launch: usize,
    /// `blockIdx.x` of the accessing block.
    pub block: u32,
    /// Threads per block of the launch.
    pub nthreads: u32,
}

/// One recorded access in a shadow cell.
#[derive(Debug, Clone, Copy)]
struct Access {
    /// Run-generation-qualified launch key (different keys = stream order).
    launch_key: u64,
    block: u32,
    tid: u32,
    pc: u32,
    atomic: bool,
    /// Barrier-epoch snapshot of the accessing thread at access time.
    epochs: [u32; NUM_BARRIERS],
}

/// Shadow state of one 4-byte memory word.
#[derive(Debug, Clone, Default)]
struct Cell {
    write: Option<Access>,
    /// Reads since the last write, at most one per thread (a newer read by
    /// the same thread subsumes the older one: any barrier edge ordering
    /// the newer read against a future write also orders the older one).
    reads: Vec<Access>,
}

/// Per-(launch, block) shadow: thread epochs plus shared-memory cells.
#[derive(Debug, Clone)]
struct BlockShadow {
    /// Per-thread count of barrier releases participated in, per barrier id.
    epochs: Vec<[u32; NUM_BARRIERS]>,
    /// Shared-memory shadow cells, keyed by word index (byte offset / 4).
    shared: HashMap<u32, Cell>,
    /// Declared `nthreads` of the first arrival in the current release
    /// interval, per barrier id (cleared at each release).
    declared: [Option<u32>; NUM_BARRIERS],
}

impl BlockShadow {
    fn new(nthreads: u32) -> Self {
        BlockShadow {
            epochs: vec![[0; NUM_BARRIERS]; nthreads as usize],
            shared: HashMap::new(),
            declared: [None; NUM_BARRIERS],
        }
    }
}

/// The sanitizer: shadow memory, barrier bookkeeping, and the report log.
///
/// Owned by [`Gpu`](crate::Gpu) when enabled; see the module docs for the
/// detection model.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    /// Global-memory shadow cells, keyed by (buffer, word index).
    global: HashMap<(u32, u32), Cell>,
    /// Per-(launch-key, block) shadow state.
    blocks: HashMap<(u64, u32), BlockShadow>,
    reports: Vec<SanitizerReport>,
    dedup: HashSet<(ReportKind, u64, u32, u32)>,
    /// Monotonic run generation so accesses from earlier `run*` calls on the
    /// same device are treated as stream-ordered, not racing.
    run_gen: u64,
    /// True once `MAX_REPORTS` was hit and further findings were dropped.
    truncated: bool,
}

impl Sanitizer {
    /// Creates an empty sanitizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collected findings so far.
    pub fn reports(&self) -> &[SanitizerReport] {
        &self.reports
    }

    /// True if findings were dropped after [`MAX_REPORTS`].
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Drains and returns the collected findings.
    pub fn take_reports(&mut self) -> Vec<SanitizerReport> {
        self.dedup.clear();
        self.truncated = false;
        std::mem::take(&mut self.reports)
    }

    /// Marks the start of a new `run*` call: launches of different runs are
    /// stream-ordered against each other, like launches within one run.
    pub fn begin_run(&mut self) {
        self.run_gen += 1;
        // Per-block shadows are scoped to one run; global cells persist so
        // cross-run accesses are checked (and found ordered by launch key).
        self.blocks.clear();
    }

    fn launch_key(&self, launch: usize) -> u64 {
        (self.run_gen << 20) | launch as u64
    }

    fn push_report(&mut self, kind: ReportKind, key: (u64, u32, u32), message: String) {
        if self.reports.len() >= MAX_REPORTS {
            self.truncated = true;
            return;
        }
        if self.dedup.insert((kind, key.0, key.1, key.2)) {
            self.reports.push(SanitizerReport { kind, message });
        }
    }

    fn block_shadow(&mut self, ctx: &AccessCtx<'_>) -> &mut BlockShadow {
        let key = (self.launch_key(ctx.launch), ctx.block);
        self.blocks
            .entry(key)
            .or_insert_with(|| BlockShadow::new(ctx.nthreads))
    }

    /// Records (and checks) one memory access of `width` bytes at `addr` by
    /// thread `tid` of the block identified by `ctx`. Local (thread-private)
    /// accesses are ignored.
    #[allow(clippy::too_many_arguments)]
    pub fn on_access(
        &mut self,
        ctx: &AccessCtx<'_>,
        tid: u32,
        pc: usize,
        addr: MemAddr,
        width: u32,
        is_write: bool,
        atomic: bool,
    ) {
        let space = addr.space();
        if space == Space::Local {
            return;
        }
        let launch_key = self.launch_key(ctx.launch);
        let epochs = self.block_shadow(ctx).epochs[tid as usize];
        let access = Access {
            launch_key,
            block: ctx.block,
            tid,
            pc: pc as u32,
            atomic,
            epochs,
        };
        let first_word = addr.offset() / 4;
        let words = width.div_ceil(4).max(1);
        for w in 0..words {
            let word = first_word + w;
            self.check_word(ctx, space, addr.buffer(), word, access, is_write);
        }
    }

    fn check_word(
        &mut self,
        ctx: &AccessCtx<'_>,
        space: Space,
        buffer: u32,
        word: u32,
        access: Access,
        is_write: bool,
    ) {
        // Pull the cell out to sidestep aliasing with `self` during checks.
        let cell_key = (buffer, word);
        let block_key = (access.launch_key, access.block);
        let mut cell = match space {
            Space::Shared => self
                .blocks
                .get_mut(&block_key)
                .and_then(|b| b.shared.remove(&word))
                .unwrap_or_default(),
            Space::Global => self.global.remove(&cell_key).unwrap_or_default(),
            Space::Local => unreachable!("local accesses filtered"),
        };

        let mut conflict: Option<Access> = None;
        if let Some(prev) = cell.write {
            if self.races(&prev, &access) {
                conflict = Some(prev);
            }
        }
        if is_write && conflict.is_none() {
            for prev in &cell.reads {
                if self.races(prev, &access) {
                    conflict = Some(*prev);
                    break;
                }
            }
        }
        if let Some(prev) = conflict {
            let kind = if space == Space::Shared {
                ReportKind::SharedRace
            } else {
                ReportKind::GlobalRace
            };
            let what = if is_write { "write" } else { "read" };
            let scope = if prev.block == access.block {
                format!("block {}", access.block)
            } else {
                format!("blocks {} and {}", prev.block, access.block)
            };
            let where_ = match space {
                Space::Shared => format!("shared word +0x{:x}", word * 4),
                _ => format!("buffer {} word +0x{:x}", buffer, word * 4),
            };
            self.push_report(
                kind,
                (access.launch_key, access.pc, prev.pc),
                format!(
                    "in `{}`: {what} of {where_} by thread {} (pc {}) conflicts with \
                     earlier access by thread {} (pc {}) in {scope} with no ordering \
                     barrier between them",
                    ctx.kernel, access.tid, access.pc, prev.tid, prev.pc
                ),
            );
        }

        if is_write {
            cell.write = Some(access);
            cell.reads.clear();
        } else {
            match cell.reads.iter_mut().find(|r| {
                r.tid == access.tid && r.block == access.block && r.launch_key == access.launch_key
            }) {
                Some(r) => *r = access,
                None => cell.reads.push(access),
            }
        }

        match space {
            Space::Shared => {
                if let Some(b) = self.blocks.get_mut(&block_key) {
                    b.shared.insert(word, cell);
                }
            }
            Space::Global => {
                self.global.insert(cell_key, cell);
            }
            Space::Local => unreachable!(),
        }
    }

    /// True when `prev` and `cur` form a data race: conflicting (not both
    /// atomic) and unordered under the stream / warp / barrier-epoch model.
    fn races(&self, prev: &Access, cur: &Access) -> bool {
        if prev.atomic && cur.atomic {
            return false;
        }
        if prev.launch_key != cur.launch_key {
            return false; // launches are stream-ordered
        }
        if prev.block != cur.block {
            return true; // concurrent blocks share no barrier
        }
        if prev.tid == cur.tid {
            return false;
        }
        if prev.tid as usize / WARP_SIZE == cur.tid as usize / WARP_SIZE {
            return false; // lockstep warp execution
        }
        // Barrier-interval ordering: some barrier `b` was released after
        // `prev` (its thread participated: its *current* epoch passed the
        // snapshot) and before `cur` (the snapshot of `cur` passed it too).
        if let Some(shadow) = self.blocks.get(&(cur.launch_key, cur.block)) {
            let prev_now = &shadow.epochs[prev.tid as usize];
            for (b, now) in prev_now.iter().enumerate() {
                if cur.epochs[b] > prev.epochs[b] && *now > prev.epochs[b] {
                    return false;
                }
            }
        }
        true
    }

    /// Records an access that falls outside its allocation: `limit` is the
    /// allocation size in bytes, `addr.offset()` the (first) offending byte
    /// offset. The execution layer clamps or drops the underlying access to
    /// keep the simulation deterministic; the report is the observable
    /// signal (the static `shared-out-of-bounds` / `global-out-of-bounds`
    /// lints are cross-validated against it).
    #[allow(clippy::too_many_arguments)]
    pub fn on_out_of_bounds(
        &mut self,
        ctx: &AccessCtx<'_>,
        tid: u32,
        pc: usize,
        addr: MemAddr,
        width: u32,
        limit: u32,
        is_write: bool,
    ) {
        let what = if is_write { "write" } else { "read" };
        let where_ = match addr.space() {
            Space::Shared => format!("shared memory at +0x{:x}", addr.offset()),
            Space::Global => format!("buffer {} at +0x{:x}", addr.buffer(), addr.offset()),
            Space::Local => format!("local memory at +0x{:x}", addr.offset()),
        };
        self.push_report(
            ReportKind::OutOfBounds,
            (self.launch_key(ctx.launch), pc as u32, addr.offset()),
            format!(
                "in `{}`: {width}-byte {what} of {where_} by thread {tid} of block {} \
                 exceeds the allocation's {limit} bytes",
                ctx.kernel, ctx.block
            ),
        );
    }

    /// Records a group of `arrivals` threads arriving at barrier `id`
    /// declaring `declared` participants. `fixed` is false for plain
    /// `__syncthreads()` (which is exempt from warp-set checks: all threads
    /// of the block participate by definition).
    pub fn on_barrier_arrival(&mut self, ctx: &AccessCtx<'_>, id: u32, declared: u32, fixed: bool) {
        let launch_key = self.launch_key(ctx.launch);
        if fixed && !(declared as usize).is_multiple_of(WARP_SIZE) {
            self.push_report(
                ReportKind::BarrierDivergence,
                (launch_key, id, declared),
                format!(
                    "in `{}`: bar.sync {id} declares {declared} threads, not a multiple \
                     of the warp size (hardware barriers count whole warps)",
                    ctx.kernel
                ),
            );
        }
        let shadow = self.block_shadow(ctx);
        match shadow.declared[id as usize] {
            None => shadow.declared[id as usize] = Some(declared),
            Some(c) if c != declared && fixed => {
                self.push_report(
                    ReportKind::BarrierCountMismatch,
                    (launch_key, id, declared.min(c)),
                    format!(
                        "in `{}`: arrivals at barrier {id} disagree on the thread count \
                         ({c} vs {declared}) within one release interval",
                        ctx.kernel
                    ),
                );
            }
            Some(_) => {}
        }
    }

    /// Records the release of barrier `id`: `released` lists the thread ids
    /// freed (including the arriving group). Bumps their epochs and, for
    /// partial barriers, checks the arriving warp set against `declared`.
    pub fn on_barrier_release(
        &mut self,
        ctx: &AccessCtx<'_>,
        id: u32,
        declared: u32,
        fixed: bool,
        released: &[u32],
    ) {
        let launch_key = self.launch_key(ctx.launch);
        if fixed {
            let mut warps: Vec<u32> = released
                .iter()
                .map(|t| t / WARP_SIZE as u32)
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
            warps.sort_unstable();
            let hw_count = warps.len() as u32 * WARP_SIZE as u32;
            if hw_count != declared || released.len() as u32 != declared {
                self.push_report(
                    ReportKind::BarrierDivergence,
                    (launch_key, id, declared),
                    format!(
                        "in `{}`: bar.sync {id} declares {declared} threads but released \
                         {} threads spanning {} warp(s) (hardware would count {hw_count})",
                        ctx.kernel,
                        released.len(),
                        warps.len(),
                    ),
                );
            }
        }
        let shadow = self.block_shadow(ctx);
        for &t in released {
            shadow.epochs[t as usize][id as usize] += 1;
        }
        shadow.declared[id as usize] = None;
    }
}

/// `HFUSE_SANITIZE=1` (any value but `0`) enables the sanitizer on every
/// device the process creates.
pub fn sanitize_enabled_by_env() -> bool {
    crate::env::sanitize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(launch: usize, block: u32) -> (String, usize, u32) {
        ("k".to_owned(), launch, block)
    }

    fn acc(
        s: &mut Sanitizer,
        (name, launch, block): &(String, usize, u32),
        tid: u32,
        pc: usize,
        addr: MemAddr,
        write: bool,
    ) {
        let c = AccessCtx {
            kernel: name,
            launch: *launch,
            block: *block,
            nthreads: 128,
        };
        s.on_access(&c, tid, pc, addr, 4, write, false);
    }

    #[test]
    fn cross_warp_shared_write_write_races() {
        let mut s = Sanitizer::new();
        let c = ctx(0, 0);
        acc(&mut s, &c, 0, 1, MemAddr::shared(0), true);
        acc(&mut s, &c, 40, 2, MemAddr::shared(0), true); // other warp
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.reports()[0].kind, ReportKind::SharedRace);
    }

    #[test]
    fn same_warp_accesses_are_exempt() {
        let mut s = Sanitizer::new();
        let c = ctx(0, 0);
        acc(&mut s, &c, 0, 1, MemAddr::shared(0), true);
        acc(&mut s, &c, 31, 2, MemAddr::shared(0), true);
        assert!(s.reports().is_empty());
    }

    #[test]
    fn barrier_orders_cross_warp_accesses() {
        let mut s = Sanitizer::new();
        let c = ctx(0, 0);
        let actx = AccessCtx {
            kernel: "k",
            launch: 0,
            block: 0,
            nthreads: 128,
        };
        acc(&mut s, &c, 0, 1, MemAddr::shared(0), true);
        let released: Vec<u32> = (0..128).collect();
        s.on_barrier_release(&actx, 0, 128, false, &released);
        acc(&mut s, &c, 40, 2, MemAddr::shared(0), false);
        assert!(s.reports().is_empty(), "{:?}", s.reports());
    }

    #[test]
    fn partial_barrier_orders_only_participants() {
        let mut s = Sanitizer::new();
        let c = ctx(0, 0);
        let actx = AccessCtx {
            kernel: "k",
            launch: 0,
            block: 0,
            nthreads: 128,
        };
        acc(&mut s, &c, 0, 1, MemAddr::shared(0), true);
        // Barrier 1 releases threads 0..64 only.
        let released: Vec<u32> = (0..64).collect();
        s.on_barrier_release(&actx, 1, 64, true, &released);
        // A participant's read is ordered...
        acc(&mut s, &c, 63, 2, MemAddr::shared(0), false);
        assert!(s.reports().is_empty(), "{:?}", s.reports());
        // ...a non-participant's write is not.
        acc(&mut s, &c, 100, 3, MemAddr::shared(0), true);
        assert_eq!(s.reports().len(), 1);
    }

    #[test]
    fn cross_block_global_conflict_races_but_cross_launch_does_not() {
        let mut s = Sanitizer::new();
        let b0 = ctx(0, 0);
        let b1 = ctx(0, 1);
        let l1 = ctx(1, 0);
        acc(&mut s, &b0, 0, 1, MemAddr::global(3, 0), true);
        acc(&mut s, &b1, 0, 2, MemAddr::global(3, 0), true); // other block: race
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.reports()[0].kind, ReportKind::GlobalRace);
        acc(&mut s, &l1, 0, 3, MemAddr::global(3, 0), true); // next launch: ordered
        assert_eq!(s.reports().len(), 1, "{:?}", s.reports());
    }

    #[test]
    fn atomics_do_not_race_with_atomics() {
        let mut s = Sanitizer::new();
        let actx = AccessCtx {
            kernel: "k",
            launch: 0,
            block: 0,
            nthreads: 128,
        };
        s.on_access(&actx, 0, 1, MemAddr::global(0, 0), 4, true, true);
        s.on_access(&actx, 70, 2, MemAddr::global(0, 0), 4, true, true);
        assert!(s.reports().is_empty());
        // ...but an atomic against a plain write does.
        s.on_access(&actx, 99, 3, MemAddr::global(0, 0), 4, true, false);
        assert_eq!(s.reports().len(), 1);
    }

    #[test]
    fn split_warp_arrival_flagged() {
        let mut s = Sanitizer::new();
        let actx = AccessCtx {
            kernel: "k",
            launch: 0,
            block: 0,
            nthreads: 64,
        };
        // 16 lanes of each of two warps: hardware would count 64, not 32.
        let released: Vec<u32> = (0..16).chain(32..48).collect();
        s.on_barrier_release(&actx, 1, 32, true, &released);
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.reports()[0].kind, ReportKind::BarrierDivergence);
    }

    #[test]
    fn aligned_full_warp_release_is_clean() {
        let mut s = Sanitizer::new();
        let actx = AccessCtx {
            kernel: "k",
            launch: 0,
            block: 0,
            nthreads: 64,
        };
        let released: Vec<u32> = (0..32).collect();
        s.on_barrier_release(&actx, 1, 32, true, &released);
        assert!(s.reports().is_empty(), "{:?}", s.reports());
    }

    #[test]
    fn mismatched_declared_counts_flagged() {
        let mut s = Sanitizer::new();
        let actx = AccessCtx {
            kernel: "k",
            launch: 0,
            block: 0,
            nthreads: 64,
        };
        s.on_barrier_arrival(&actx, 1, 64, true);
        s.on_barrier_arrival(&actx, 1, 32, true);
        assert!(s
            .reports()
            .iter()
            .any(|r| r.kind == ReportKind::BarrierCountMismatch));
    }

    #[test]
    fn reports_deduplicate() {
        let mut s = Sanitizer::new();
        let c = ctx(0, 0);
        for i in 0..10 {
            acc(&mut s, &c, 0, 1, MemAddr::shared(i * 64), true);
            acc(&mut s, &c, 40, 2, MemAddr::shared(i * 64), true);
        }
        assert_eq!(s.reports().len(), 1, "same pc pair dedupes");
    }
}
