//! GPU hardware configurations.
//!
//! Two presets mirror the paper's testbeds: [`GpuConfig::pascal_like`]
//! (GTX 1080Ti) and [`GpuConfig::volta_like`] (Tesla V100). Per-SM resource
//! limits match the real parts (64 K registers, 96 KiB shared memory, 2048
//! threads); the SM *count* is scaled down so that representative workloads
//! simulate in milliseconds — this uniformly scales both the native and the
//! fused executions, preserving the comparisons the paper makes.

/// Instruction latency classes, in cycles from issue to result-ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer/float ALU (add, mul, compare, shift, ...).
    pub alu: u32,
    /// Integer divide / remainder (iterative on real hardware).
    pub div: u32,
    /// Special function unit: sqrt, rsqrt, exp, log.
    pub special: u32,
    /// Warp shuffle.
    pub shuffle: u32,
    /// Shared-memory load/store.
    pub shared_mem: u32,
    /// Shared-memory atomic (plus per-conflict serialization).
    pub shared_atomic: u32,
    /// Pipe-occupancy cycles per same-address conflict of a shared atomic
    /// (each colliding lane retries; pre-Volta float atomics are CAS loops).
    pub shared_atomic_retry: u32,
    /// Global-memory access (DRAM round trip; L1/L2 are not modeled
    /// separately — this is the average latency the warp scheduler hides).
    pub global_mem: u32,
    /// Global-memory atomic.
    pub global_atomic: u32,
    /// Local-memory access (register spills, local arrays) — backed by L1/L2
    /// on real parts, cheaper than DRAM but far dearer than a register.
    pub local_mem: u32,
    /// Extra latency per spilled-register operand of an instruction (spill
    /// reloads mostly hit L1).
    pub spill_access: u32,
    /// Extra cycles per additional memory transaction of an uncoalesced
    /// access.
    pub uncoalesced_extra: u32,
}

/// A GPU model: SM resources, scheduler shape, and the memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Registers per SM (the paper's `SMNRegs`).
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes (the paper's `SMShMem`).
    pub shared_per_sm: u32,
    /// Maximum resident threads per SM (the paper's `SMNThreads`).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM (hardware block slots).
    pub max_blocks_per_sm: u32,
    /// Warp schedulers per SM; each can issue one instruction per cycle.
    pub schedulers_per_sm: u32,
    /// Maximum in-flight global-memory transactions per SM (MSHR capacity).
    pub mshrs_per_sm: u32,
    /// Global-memory transactions the DRAM system accepts per cycle, across
    /// the whole GPU (bandwidth limit).
    pub dram_transactions_per_cycle: u32,
    /// Memory transaction granularity in bytes (coalescing segment size).
    pub segment_bytes: u32,
    /// Instruction latencies.
    pub latencies: Latencies,
}

impl GpuConfig {
    /// A Pascal-generation configuration in the spirit of the GTX 1080Ti.
    ///
    /// Per-SM limits are the real Pascal numbers; the SM count is scaled
    /// down (28 → 4, with DRAM bandwidth scaled proportionally) so that
    /// profile runs complete quickly.
    pub fn pascal_like() -> Self {
        GpuConfig {
            name: "1080Ti".to_owned(),
            num_sms: 4,
            regs_per_sm: 64 * 1024,
            shared_per_sm: 96 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            schedulers_per_sm: 4,
            mshrs_per_sm: 256,
            dram_transactions_per_cycle: 2,
            segment_bytes: 128,
            latencies: Latencies {
                alu: 9,
                div: 24,
                special: 16,
                shuffle: 8,
                shared_mem: 24,
                shared_atomic: 30,
                shared_atomic_retry: 4,
                global_mem: 440,
                global_atomic: 480,
                local_mem: 180,
                spill_access: 80,
                uncoalesced_extra: 8,
            },
        }
    }

    /// A Volta-generation configuration in the spirit of the Tesla V100.
    ///
    /// Relative to Pascal: more SMs (here 8 vs 4, mirroring 80 vs 28),
    /// proportionally more DRAM bandwidth (HBM2), lower ALU latency, and a
    /// lower average global-memory latency.
    pub fn volta_like() -> Self {
        GpuConfig {
            name: "V100".to_owned(),
            num_sms: 8,
            regs_per_sm: 64 * 1024,
            shared_per_sm: 96 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            schedulers_per_sm: 4,
            mshrs_per_sm: 384,
            dram_transactions_per_cycle: 6,
            segment_bytes: 128,
            latencies: Latencies {
                alu: 7,
                div: 20,
                special: 12,
                shuffle: 6,
                shared_mem: 20,
                shared_atomic: 24,
                shared_atomic_retry: 3,
                global_mem: 400,
                global_atomic: 440,
                local_mem: 150,
                spill_access: 60,
                uncoalesced_extra: 6,
            },
        }
    }

    /// A deliberately tiny configuration for unit tests (1 SM, shallow
    /// latencies) so tests run instantly and assertions are easy to reason
    /// about.
    pub fn test_tiny() -> Self {
        GpuConfig {
            name: "tiny".to_owned(),
            num_sms: 1,
            regs_per_sm: 64 * 1024,
            shared_per_sm: 96 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            schedulers_per_sm: 4,
            mshrs_per_sm: 64,
            dram_transactions_per_cycle: 2,
            segment_bytes: 128,
            latencies: Latencies {
                alu: 2,
                div: 8,
                special: 6,
                shuffle: 3,
                shared_mem: 8,
                shared_atomic: 10,
                shared_atomic_retry: 2,
                global_mem: 60,
                global_atomic: 70,
                local_mem: 30,
                spill_access: 10,
                uncoalesced_extra: 4,
            },
        }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_resources() {
        for cfg in [GpuConfig::pascal_like(), GpuConfig::volta_like()] {
            assert_eq!(
                cfg.regs_per_sm, 65536,
                "{}: paper says 64K registers",
                cfg.name
            );
            assert_eq!(
                cfg.shared_per_sm, 98304,
                "{}: paper says 96K shared",
                cfg.name
            );
            assert_eq!(
                cfg.max_threads_per_sm, 2048,
                "{}: paper says 2048 threads",
                cfg.name
            );
            assert_eq!(cfg.max_warps_per_sm(), 64);
        }
    }

    #[test]
    fn volta_has_more_parallelism_than_pascal() {
        let p = GpuConfig::pascal_like();
        let v = GpuConfig::volta_like();
        assert!(v.num_sms > p.num_sms);
        assert!(v.dram_transactions_per_cycle > p.dram_transactions_per_cycle);
        assert!(v.latencies.alu < p.latencies.alu);
    }

    #[test]
    fn memory_is_much_slower_than_alu() {
        let cfg = GpuConfig::pascal_like();
        assert!(cfg.latencies.global_mem > 30 * cfg.latencies.alu);
    }
}
