//! Functional execution of kernel IR at warp-group granularity.
//!
//! Threads carry their own program counters; a warp always issues the group
//! of live threads sharing the *minimum* PC (the classic min-PC SIMT rule),
//! so divergence serializes naturally and reconvergence happens when PCs
//! meet again. Barriers park threads; the block releases them when the
//! arrival count reaches the barrier's participation count.

use thread_ir::ir::{
    AtomOp, BarCount, BinIr, Inst, ScalarTy, ShflKind, SpecialReg, UnIr, VoteKind,
};
use thread_ir::MemAddr;

use crate::decode::{DecodedKernel, NO_REG};
use crate::error::SimError;
use crate::launch::Launch;
use crate::memory::GpuMemory;
use crate::sanitizer::{AccessCtx, Sanitizer};

/// Threads per warp.
pub const WARP_SIZE: usize = 32;

/// One thread's architectural state.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// Current program counter (instruction index).
    pub pc: usize,
    /// True once the thread executed `Ret`.
    pub done: bool,
    /// Barrier id the thread is parked at, if any.
    pub waiting_barrier: Option<u8>,
    /// Register file (raw 64-bit words).
    pub regs: Vec<u64>,
    /// Per-thread local memory (local arrays, spill slots).
    pub local: Vec<u8>,
}

/// What a warp can do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpPeek {
    /// Every thread has exited.
    Done,
    /// All live threads are parked at barriers.
    Blocked,
    /// The min-PC group `mask` (bit i = warp-lane i) can issue `pc`.
    Exec {
        /// Program counter the group will execute.
        pc: usize,
        /// Lane mask of the participating threads.
        mask: u32,
    },
}

/// Instruction classes for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// Simple ALU op (including casts, moves, immediates, specials regs).
    Alu,
    /// Integer divide/remainder.
    Div,
    /// Special function unit (sqrt, exp, ...).
    Special,
    /// Warp shuffle.
    Shuffle,
    /// Shared-memory access.
    SharedMem,
    /// Shared-memory atomic.
    SharedAtomic,
    /// Global-memory access.
    GlobalMem,
    /// Global-memory atomic.
    GlobalAtomic,
    /// Local-memory access (spills / local arrays).
    LocalMem,
    /// Branch / jump / return.
    Control,
    /// Barrier arrival.
    Barrier,
}

/// The result of issuing one group-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Latency/queueing class.
    pub kind: IssueKind,
    /// Global-memory transactions generated (coalescing-aware).
    pub transactions: u32,
    /// Extra serialization cycles (atomic address conflicts).
    pub conflict_extra: u32,
}

/// Execution state of one thread block.
#[derive(Debug, Clone)]
pub struct BlockExec {
    /// Index of the owning launch within the run.
    pub launch_idx: usize,
    /// This block's `blockIdx.x`.
    pub block_idx: u32,
    /// All threads, warp-major (thread `i` is lane `i % 32` of warp `i/32`).
    pub threads: Vec<ThreadState>,
    /// The block's shared-memory frame (static + dynamic).
    pub shared: Vec<u8>,
    /// Arrival counters for the 16 named barriers.
    pub barrier_arrivals: [u32; 16],
}

impl BlockExec {
    /// Creates the initial state for one block of `launch`.
    pub fn new(launch: &Launch, launch_idx: usize, block_idx: u32) -> Self {
        let n = launch.threads_per_block() as usize;
        let kernel = &launch.kernel;
        let threads = (0..n)
            .map(|_| ThreadState {
                pc: 0,
                done: false,
                waiting_barrier: None,
                regs: vec![0; kernel.num_regs as usize],
                local: vec![0; kernel.local_bytes as usize],
            })
            .collect();
        BlockExec {
            launch_idx,
            block_idx,
            threads,
            shared: vec![0; launch.shared_bytes_per_block() as usize],
            barrier_arrivals: [0; 16],
        }
    }

    /// Number of warps in the block.
    pub fn num_warps(&self) -> usize {
        self.threads.len().div_ceil(WARP_SIZE)
    }

    /// True once every thread has exited.
    pub fn all_done(&self) -> bool {
        self.threads.iter().all(|t| t.done)
    }

    /// Number of warps with at least one unfinished thread.
    pub fn live_warps(&self) -> u32 {
        (0..self.num_warps())
            .filter(|&w| self.warp_threads(w).iter().any(|t| !t.done))
            .count() as u32
    }

    fn warp_bounds(&self, warp: usize) -> (usize, usize) {
        let start = warp * WARP_SIZE;
        let end = (start + WARP_SIZE).min(self.threads.len());
        (start, end)
    }

    fn warp_threads(&self, warp: usize) -> &[ThreadState] {
        let (s, e) = self.warp_bounds(warp);
        &self.threads[s..e]
    }

    /// Decodes the memory space a `Ld`/`St`/`Atom` at the group's PC will
    /// touch, by inspecting the first active lane's (already computed)
    /// address register. Returns `None` for non-memory instructions.
    pub fn peek_space(
        &self,
        warp: usize,
        mask: u32,
        pc: usize,
        prog: &DecodedKernel,
    ) -> Option<thread_ir::Space> {
        let addr_reg = prog.insts[pc].addr_reg;
        if addr_reg == NO_REG {
            return None;
        }
        let lane = mask.trailing_zeros() as usize;
        let (start, _) = self.warp_bounds(warp);
        Some(MemAddr(self.threads[start + lane].regs[addr_reg as usize]).space())
    }

    /// Finds the min-PC runnable group of a warp.
    pub fn peek_warp(&self, warp: usize) -> WarpPeek {
        let (start, end) = self.warp_bounds(warp);
        let mut min_pc = usize::MAX;
        let mut any_live = false;
        for t in &self.threads[start..end] {
            if t.done {
                continue;
            }
            any_live = true;
            if t.waiting_barrier.is_none() && t.pc < min_pc {
                min_pc = t.pc;
            }
        }
        if !any_live {
            return WarpPeek::Done;
        }
        if min_pc == usize::MAX {
            return WarpPeek::Blocked;
        }
        let mut mask = 0u32;
        for (lane, t) in self.threads[start..end].iter().enumerate() {
            if !t.done && t.waiting_barrier.is_none() && t.pc == min_pc {
                mask |= 1 << lane;
            }
        }
        WarpPeek::Exec { pc: min_pc, mask }
    }

    /// Executes instruction `pc` for the lane group `mask` of `warp`,
    /// reading the instruction from the pre-decoded buffer `prog`.
    /// When `san` is given, memory accesses and barrier events are also
    /// reported to the sanitizer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on out-of-bounds accesses or malformed
    /// addresses — the simulation should be aborted.
    ///
    /// # Panics
    ///
    /// Panics if `mask` does not match runnable threads at `pc` (engine
    /// bug, not user error).
    #[allow(clippy::too_many_arguments)]
    pub fn exec_group(
        &mut self,
        launch: &Launch,
        prog: &DecodedKernel,
        mem: &mut GpuMemory,
        warp: usize,
        pc: usize,
        mask: u32,
        seg_bytes: u32,
        mut san: Option<&mut Sanitizer>,
    ) -> Result<ExecOutcome, SimError> {
        let kernel = &launch.kernel;
        let dinst = &prog.insts[pc];
        let (warp_start, _) = self.warp_bounds(warp);

        // Warp-uniform fast path: when the whole group reads identical
        // operand values, evaluate once and broadcast instead of looping
        // 32 scalar evaluations. Timing-transparent — the outcome kind is
        // identical to the scalar path's.
        if dinst.uniform_eligible && mask.count_ones() > 1 {
            if let Some(out) = self.exec_uniform_group(
                launch,
                &dinst.inst,
                warp_start,
                pc,
                mask,
                dinst.statically_uniform,
            ) {
                return Ok(out);
            }
        }

        let inst = &dinst.inst;
        let lanes: Lanes = Lanes { mask };
        let san_ctx = AccessCtx {
            kernel: &kernel.name,
            launch: self.launch_idx,
            block: self.block_idx,
            nthreads: launch.threads_per_block(),
        };

        let simple = |kind: IssueKind| ExecOutcome {
            kind,
            transactions: 0,
            conflict_extra: 0,
        };

        match inst {
            Inst::Imm { dst, value } => {
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    t.regs[*dst as usize] = *value;
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Alu))
            }
            Inst::Mov { dst, src } => {
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    t.regs[*dst as usize] = t.regs[*src as usize];
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Alu))
            }
            Inst::Bin { op, ty, dst, a, b } => {
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    let va = t.regs[*a as usize];
                    let vb = t.regs[*b as usize];
                    t.regs[*dst as usize] = alu::bin(*op, *ty, va, vb);
                    t.pc = pc + 1;
                }
                // Divides are iterative on real hardware for integers and
                // a multi-instruction reciprocal sequence for floats.
                let kind = if matches!(op, BinIr::Div | BinIr::Rem) {
                    IssueKind::Div
                } else {
                    IssueKind::Alu
                };
                Ok(simple(kind))
            }
            Inst::Un { op, ty, dst, a } => {
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    let va = t.regs[*a as usize];
                    t.regs[*dst as usize] = alu::un(*op, *ty, va);
                    t.pc = pc + 1;
                }
                let kind = match op {
                    UnIr::Sqrt | UnIr::Rsqrt | UnIr::Exp | UnIr::Log => IssueKind::Special,
                    _ => IssueKind::Alu,
                };
                Ok(simple(kind))
            }
            Inst::Cast { dst, src, from, to } => {
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    let v = t.regs[*src as usize];
                    t.regs[*dst as usize] = alu::cast(*from, *to, v);
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Alu))
            }
            Inst::Special { dst, reg } => {
                for lane in lanes {
                    let tid = warp_start + lane;
                    let v = self.special_value(launch, *reg, tid);
                    let t = &mut self.threads[tid];
                    t.regs[*dst as usize] = v;
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Alu))
            }
            Inst::LdParam { dst, index } => {
                let bits = launch.args[*index as usize].to_bits();
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    t.regs[*dst as usize] = bits;
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Alu))
            }
            Inst::SharedAddr { dst, offset } => {
                let addr = MemAddr::shared(*offset).0;
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    t.regs[*dst as usize] = addr;
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Alu))
            }
            Inst::LocalAddr { dst, offset } => {
                let addr = MemAddr::local(*offset).0;
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    t.regs[*dst as usize] = addr;
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Alu))
            }
            Inst::Ld { ty, dst, addr } => {
                let mut segs = SegmentSet::new();
                let mut kind = IssueKind::SharedMem;
                for lane in lanes {
                    let tid = warp_start + lane;
                    let a = MemAddr(self.threads[tid].regs[*addr as usize]);
                    let v = self.load(mem, tid, a, *ty)?;
                    if let Some(s) = san.as_deref_mut() {
                        s.on_access(&san_ctx, tid as u32, pc, a, ty.size_bytes(), false, false);
                    }
                    let t = &mut self.threads[tid];
                    t.regs[*dst as usize] = v;
                    t.pc = pc + 1;
                    match a.space() {
                        thread_ir::Space::Global => {
                            kind = IssueKind::GlobalMem;
                            segs.insert(a, seg_bytes);
                        }
                        thread_ir::Space::Local => kind = IssueKind::LocalMem,
                        thread_ir::Space::Shared => {}
                    }
                }
                Ok(ExecOutcome {
                    kind,
                    transactions: segs.count(),
                    conflict_extra: 0,
                })
            }
            Inst::St { ty, addr, val } => {
                let mut segs = SegmentSet::new();
                let mut kind = IssueKind::SharedMem;
                for lane in lanes {
                    let tid = warp_start + lane;
                    let a = MemAddr(self.threads[tid].regs[*addr as usize]);
                    let v = self.threads[tid].regs[*val as usize];
                    self.store(mem, tid, a, *ty, v)?;
                    if let Some(s) = san.as_deref_mut() {
                        s.on_access(&san_ctx, tid as u32, pc, a, ty.size_bytes(), true, false);
                    }
                    self.threads[tid].pc = pc + 1;
                    match a.space() {
                        thread_ir::Space::Global => {
                            kind = IssueKind::GlobalMem;
                            segs.insert(a, seg_bytes);
                        }
                        thread_ir::Space::Local => kind = IssueKind::LocalMem,
                        thread_ir::Space::Shared => {}
                    }
                }
                Ok(ExecOutcome {
                    kind,
                    transactions: segs.count(),
                    conflict_extra: 0,
                })
            }
            Inst::Atom {
                op,
                ty,
                dst,
                addr,
                val,
            } => {
                let mut segs = SegmentSet::new();
                let mut kind = IssueKind::SharedAtomic;
                let mut addrs: Vec<u64> = Vec::new();
                for lane in lanes {
                    let tid = warp_start + lane;
                    let a = MemAddr(self.threads[tid].regs[*addr as usize]);
                    let v = self.threads[tid].regs[*val as usize];
                    let old = self.load(mem, tid, a, *ty)?;
                    let new = match op {
                        AtomOp::Add => alu::bin(BinIr::Add, *ty, old, v),
                        AtomOp::Max => alu::bin(BinIr::Max, *ty, old, v),
                        AtomOp::Exch => v,
                    };
                    self.store(mem, tid, a, *ty, new)?;
                    if let Some(s) = san.as_deref_mut() {
                        s.on_access(&san_ctx, tid as u32, pc, a, ty.size_bytes(), true, true);
                    }
                    let t = &mut self.threads[tid];
                    t.regs[*dst as usize] = old;
                    t.pc = pc + 1;
                    addrs.push(a.0);
                    if a.space() == thread_ir::Space::Global {
                        kind = IssueKind::GlobalAtomic;
                        segs.insert(a, seg_bytes);
                    }
                }
                // Serialization cost: colliding addresses retry one by one.
                addrs.sort_unstable();
                let conflicts = addrs.windows(2).filter(|w| w[0] == w[1]).count() as u32;
                Ok(ExecOutcome {
                    kind,
                    transactions: segs.count(),
                    conflict_extra: conflicts,
                })
            }
            Inst::Shfl {
                kind,
                dst,
                src,
                lane: lane_reg,
                width,
            } => {
                // Phase 1: read all source values (before any write, since
                // dst may alias src).
                let (ws, we) = self.warp_bounds(warp);
                let warp_vals: Vec<u64> = self.threads[ws..we]
                    .iter()
                    .map(|t| t.regs[*src as usize])
                    .collect();
                for lane in lanes {
                    let tid = warp_start + lane;
                    let operand = self.threads[tid].regs[*lane_reg as usize] as u32;
                    let w = (self.threads[tid].regs[*width as usize] as u32).clamp(1, 32);
                    let lane_u = lane as u32;
                    let src_lane = match kind {
                        ShflKind::Xor => lane_u ^ operand,
                        ShflKind::Down => {
                            let base = lane_u / w * w;
                            let within = lane_u % w + operand;
                            if within >= w {
                                lane_u
                            } else {
                                base + within
                            }
                        }
                    };
                    let v = warp_vals
                        .get(src_lane as usize)
                        .copied()
                        .unwrap_or(warp_vals[lane]);
                    let t = &mut self.threads[tid];
                    t.regs[*dst as usize] = v;
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Shuffle))
            }
            Inst::Vote { kind, dst, src } => {
                // Participants are the lanes of the executing group (the
                // CUDA `_sync` mask is evaluated and dropped at lowering;
                // fused-kernel guards are warp-uniform so the group *is*
                // the active mask).
                let mut ballot = 0u32;
                for lane in lanes {
                    if self.threads[warp_start + lane].regs[*src as usize] != 0 {
                        ballot |= 1 << lane;
                    }
                }
                let value = match kind {
                    VoteKind::Ballot => u64::from(ballot),
                    VoteKind::Any => u64::from(ballot != 0),
                    VoteKind::All => u64::from(ballot == mask),
                };
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    t.regs[*dst as usize] = value;
                    t.pc = pc + 1;
                }
                Ok(simple(IssueKind::Shuffle))
            }
            Inst::Bar { id, count } => {
                let expected = match count {
                    BarCount::All => launch.threads_per_block(),
                    BarCount::Fixed(n) => *n,
                };
                let fixed = matches!(count, BarCount::Fixed(_));
                if let Some(s) = san.as_deref_mut() {
                    s.on_barrier_arrival(&san_ctx, *id, expected, fixed);
                }
                let group_size = mask.count_ones();
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    t.waiting_barrier = Some(*id as u8);
                    t.pc = pc + 1;
                }
                self.barrier_arrivals[*id as usize] += group_size;
                if self.barrier_arrivals[*id as usize] >= expected {
                    self.barrier_arrivals[*id as usize] -= expected;
                    let id8 = *id as u8;
                    let collect = san.is_some();
                    let mut released: Vec<u32> = Vec::new();
                    for (tid, t) in self.threads.iter_mut().enumerate() {
                        if t.waiting_barrier == Some(id8) {
                            t.waiting_barrier = None;
                            if collect {
                                released.push(tid as u32);
                            }
                        }
                    }
                    if let Some(s) = san {
                        s.on_barrier_release(&san_ctx, *id, expected, fixed, &released);
                    }
                }
                Ok(simple(IssueKind::Barrier))
            }
            Inst::Bra {
                cond,
                if_zero,
                target,
            } => {
                for lane in lanes {
                    let t = &mut self.threads[warp_start + lane];
                    let taken = (t.regs[*cond as usize] == 0) == *if_zero;
                    t.pc = if taken { *target } else { pc + 1 };
                }
                Ok(simple(IssueKind::Control))
            }
            Inst::Jmp { target } => {
                for lane in lanes {
                    self.threads[warp_start + lane].pc = *target;
                }
                Ok(simple(IssueKind::Control))
            }
            Inst::Ret => {
                for lane in lanes {
                    self.threads[warp_start + lane].done = true;
                }
                Ok(simple(IssueKind::Control))
            }
        }
    }

    /// True when every active lane of the group holds the same value in
    /// `reg`.
    fn lanes_uniform(&self, warp_start: usize, mask: u32, reg: u32) -> bool {
        let first = warp_start + mask.trailing_zeros() as usize;
        let v = self.threads[first].regs[reg as usize];
        Lanes { mask }.all(|lane| self.threads[warp_start + lane].regs[reg as usize] == v)
    }

    /// [`Self::lanes_uniform`] with a static shortcut: when dataflow already
    /// proved the register uniform at this PC the runtime scan is skipped
    /// (validated by a debug assertion, which the differential and fuzz
    /// test suites run with enabled).
    fn group_uniform(&self, warp_start: usize, mask: u32, reg: u32, proven: bool) -> bool {
        if proven {
            debug_assert!(
                self.lanes_uniform(warp_start, mask, reg),
                "static uniformity fact violated at runtime for reg {reg}"
            );
            return true;
        }
        self.lanes_uniform(warp_start, mask, reg)
    }

    /// The warp-uniform fast path: evaluates a register-pure instruction
    /// once using the first active lane's operands and broadcasts the
    /// result to the whole group, provided every active lane reads
    /// identical operand values. The operand comparison is a runtime scan
    /// unless `proven` says static analysis already established uniformity
    /// at this PC. Returns `None` when the operands diverge (the caller
    /// falls back to the scalar loop). The `IssueKind` mapping mirrors the
    /// scalar path exactly so timing is unchanged.
    #[allow(clippy::too_many_arguments)]
    fn exec_uniform_group(
        &mut self,
        launch: &Launch,
        inst: &Inst,
        warp_start: usize,
        pc: usize,
        mask: u32,
        proven: bool,
    ) -> Option<ExecOutcome> {
        let first = warp_start + mask.trailing_zeros() as usize;
        let (dst, value, kind) = match inst {
            Inst::Mov { dst, src } => {
                if !self.group_uniform(warp_start, mask, *src, proven) {
                    return None;
                }
                let v = self.threads[first].regs[*src as usize];
                (*dst, v, IssueKind::Alu)
            }
            Inst::Bin { op, ty, dst, a, b } => {
                if !self.group_uniform(warp_start, mask, *a, proven)
                    || !self.group_uniform(warp_start, mask, *b, proven)
                {
                    return None;
                }
                let va = self.threads[first].regs[*a as usize];
                let vb = self.threads[first].regs[*b as usize];
                let kind = if matches!(op, BinIr::Div | BinIr::Rem) {
                    IssueKind::Div
                } else {
                    IssueKind::Alu
                };
                (*dst, alu::bin(*op, *ty, va, vb), kind)
            }
            Inst::Un { op, ty, dst, a } => {
                if !self.group_uniform(warp_start, mask, *a, proven) {
                    return None;
                }
                let va = self.threads[first].regs[*a as usize];
                let kind = match op {
                    UnIr::Sqrt | UnIr::Rsqrt | UnIr::Exp | UnIr::Log => IssueKind::Special,
                    _ => IssueKind::Alu,
                };
                (*dst, alu::un(*op, *ty, va), kind)
            }
            Inst::Cast { dst, src, from, to } => {
                if !self.group_uniform(warp_start, mask, *src, proven) {
                    return None;
                }
                let v = self.threads[first].regs[*src as usize];
                (*dst, alu::cast(*from, *to, v), IssueKind::Alu)
            }
            // Decode only marks block-uniform special registers eligible,
            // so the value is the same for every thread by construction.
            Inst::Special { dst, reg } => (
                *dst,
                self.special_value(launch, *reg, first),
                IssueKind::Alu,
            ),
            _ => return None,
        };
        for lane in (Lanes { mask }) {
            let t = &mut self.threads[warp_start + lane];
            t.regs[dst as usize] = value;
            t.pc = pc + 1;
        }
        Some(ExecOutcome {
            kind,
            transactions: 0,
            conflict_extra: 0,
        })
    }

    fn special_value(&self, launch: &Launch, reg: SpecialReg, tid: usize) -> u64 {
        let (bx, by, _bz) = launch.block_dim;
        let linear = tid as u32;
        let v: u32 = match reg {
            SpecialReg::ThreadIdxX => linear % bx,
            SpecialReg::ThreadIdxY => linear / bx % by,
            SpecialReg::ThreadIdxZ => linear / (bx * by),
            SpecialReg::BlockIdxX => self.block_idx,
            SpecialReg::BlockIdxY | SpecialReg::BlockIdxZ => 0,
            SpecialReg::BlockDimX => launch.block_dim.0,
            SpecialReg::BlockDimY => launch.block_dim.1,
            SpecialReg::BlockDimZ => launch.block_dim.2,
            SpecialReg::GridDimX => launch.grid_dim,
            SpecialReg::GridDimY | SpecialReg::GridDimZ => 1,
        };
        u64::from(v)
    }

    fn load(
        &self,
        mem: &GpuMemory,
        tid: usize,
        addr: MemAddr,
        ty: ScalarTy,
    ) -> Result<u64, SimError> {
        let w = ty.size_bytes();
        let raw = match addr.space() {
            thread_ir::Space::Global => mem.load(addr.buffer(), addr.offset(), w)?,
            thread_ir::Space::Shared => read_bytes(&self.shared, addr.offset(), w, "shared load")?,
            thread_ir::Space::Local => {
                read_bytes(&self.threads[tid].local, addr.offset(), w, "local load")?
            }
        };
        Ok(alu::canon_load(ty, raw))
    }

    fn store(
        &mut self,
        mem: &mut GpuMemory,
        tid: usize,
        addr: MemAddr,
        ty: ScalarTy,
        value: u64,
    ) -> Result<(), SimError> {
        let w = ty.size_bytes();
        match addr.space() {
            thread_ir::Space::Global => mem.store(addr.buffer(), addr.offset(), w, value),
            thread_ir::Space::Shared => {
                write_bytes(&mut self.shared, addr.offset(), w, value, "shared store")
            }
            thread_ir::Space::Local => write_bytes(
                &mut self.threads[tid].local,
                addr.offset(),
                w,
                value,
                "local store",
            ),
        }
    }
}

fn read_bytes(buf: &[u8], offset: u32, width: u32, what: &str) -> Result<u64, SimError> {
    let (o, w) = (offset as usize, width as usize);
    if o + w > buf.len() {
        return Err(SimError::new(format!(
            "{what} out of bounds: offset {o}+{w} in {} bytes",
            buf.len()
        )));
    }
    let mut word = [0u8; 8];
    word[..w].copy_from_slice(&buf[o..o + w]);
    Ok(u64::from_le_bytes(word))
}

fn write_bytes(
    buf: &mut [u8],
    offset: u32,
    width: u32,
    value: u64,
    what: &str,
) -> Result<(), SimError> {
    let (o, w) = (offset as usize, width as usize);
    if o + w > buf.len() {
        return Err(SimError::new(format!(
            "{what} out of bounds: offset {o}+{w} in {} bytes",
            buf.len()
        )));
    }
    buf[o..o + w].copy_from_slice(&value.to_le_bytes()[..w]);
    Ok(())
}

/// Iterator over set lanes of a mask.
#[derive(Debug, Clone, Copy)]
struct Lanes {
    mask: u32,
}

impl Iterator for Lanes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.mask == 0 {
            return None;
        }
        let lane = self.mask.trailing_zeros() as usize;
        self.mask &= self.mask - 1;
        Some(lane)
    }
}

/// Distinct-memory-segment counter for coalescing.
struct SegmentSet {
    segs: Vec<u64>,
}

impl SegmentSet {
    fn new() -> Self {
        Self {
            segs: Vec::with_capacity(4),
        }
    }

    fn insert(&mut self, addr: MemAddr, seg_bytes: u32) {
        let key = (u64::from(addr.buffer()) << 32) | u64::from(addr.offset() / seg_bytes);
        if !self.segs.contains(&key) {
            self.segs.push(key);
        }
    }

    fn count(&self) -> u32 {
        self.segs.len() as u32
    }
}

pub use thread_ir::alu;

#[cfg(test)]
mod tests {
    use super::alu;
    use super::*;

    #[test]
    fn lanes_iterates_set_bits() {
        let lanes: Vec<usize> = Lanes { mask: 0b1010_0001 }.collect();
        assert_eq!(lanes, vec![0, 5, 7]);
    }

    #[test]
    fn segment_set_counts_distinct_lines() {
        let mut s = SegmentSet::new();
        s.insert(MemAddr::global(0, 0), 128);
        s.insert(MemAddr::global(0, 64), 128); // same 128B line
        s.insert(MemAddr::global(0, 128), 128); // next line
        s.insert(MemAddr::global(1, 0), 128); // other buffer
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn alu_i32_canonicalizes_sign() {
        let r = alu::bin(BinIr::Sub, ScalarTy::I32, 0, 1);
        assert_eq!(r, u64::MAX, "-1 must be sign-extended");
        assert_eq!(alu::bin(BinIr::Lt, ScalarTy::I32, r, 0), 1, "-1 < 0");
    }

    #[test]
    fn alu_u32_wraps_and_zero_extends() {
        let r = alu::bin(BinIr::Sub, ScalarTy::U32, 0, 1);
        assert_eq!(r, u64::from(u32::MAX));
        assert_eq!(alu::bin(BinIr::Gt, ScalarTy::U32, r, 0), 1, "u32::MAX > 0");
    }

    #[test]
    fn alu_f32_round_trip() {
        let a = u64::from(1.5f32.to_bits());
        let b = u64::from(2.0f32.to_bits());
        let r = alu::bin(BinIr::Mul, ScalarTy::F32, a, b);
        assert_eq!(f32::from_bits(r as u32), 3.0);
    }

    #[test]
    fn division_by_zero_is_zero_for_ints() {
        assert_eq!(alu::bin(BinIr::Div, ScalarTy::I32, 5, 0), 0);
        assert_eq!(alu::bin(BinIr::Rem, ScalarTy::U64, 5, 0), 0);
    }

    #[test]
    fn float_division_by_zero_is_inf() {
        let one = u64::from(1.0f32.to_bits());
        let zero = u64::from(0.0f32.to_bits());
        let r = alu::bin(BinIr::Div, ScalarTy::F32, one, zero);
        assert!(f32::from_bits(r as u32).is_infinite());
    }

    #[test]
    fn oversized_shifts_clamp() {
        assert_eq!(alu::bin(BinIr::Shl, ScalarTy::U32, 1, 32), 0);
        // arithmetic right shift of a negative value saturates to -1
        let neg = alu::bin(BinIr::Sub, ScalarTy::I32, 0, 8);
        assert_eq!(alu::bin(BinIr::Shr, ScalarTy::I32, neg, 40), u64::MAX);
    }

    #[test]
    fn cast_f32_to_i32_truncates() {
        let v = u64::from(3.9f32.to_bits());
        assert_eq!(alu::cast(ScalarTy::F32, ScalarTy::I32, v), 3);
        let v = u64::from((-3.9f32).to_bits());
        assert_eq!(alu::cast(ScalarTy::F32, ScalarTy::I32, v) as i64, -3);
    }

    #[test]
    fn cast_i32_to_f32() {
        let v = alu::bin(BinIr::Sub, ScalarTy::I32, 0, 7); // -7
        let r = alu::cast(ScalarTy::I32, ScalarTy::F32, v);
        assert_eq!(f32::from_bits(r as u32), -7.0);
    }

    #[test]
    fn canon_load_sign_extends_i32() {
        assert_eq!(alu::canon_load(ScalarTy::I32, 0xffff_ffff), u64::MAX);
        assert_eq!(alu::canon_load(ScalarTy::U32, 0xffff_ffff), 0xffff_ffff);
    }

    #[test]
    fn unary_not_and_neg() {
        assert_eq!(alu::un(UnIr::Not, ScalarTy::I32, 0), 1);
        assert_eq!(alu::un(UnIr::Not, ScalarTy::I32, 5), 0);
        let nz = u64::from((-0.0f32).to_bits());
        assert_eq!(alu::un(UnIr::Not, ScalarTy::F32, nz), 1, "-0.0 is falsy");
        assert_eq!(alu::un(UnIr::Neg, ScalarTy::I32, 5) as i64, -5);
    }

    #[test]
    fn special_functions() {
        let four = u64::from(4.0f32.to_bits());
        assert_eq!(
            f32::from_bits(alu::un(UnIr::Sqrt, ScalarTy::F32, four) as u32),
            2.0
        );
        assert_eq!(
            f32::from_bits(alu::un(UnIr::Rsqrt, ScalarTy::F32, four) as u32),
            0.5
        );
    }
}
