//! Functional execution of kernel IR at warp-group granularity.
//!
//! Threads carry their own program counters; a warp always issues the group
//! of live threads sharing the *minimum* PC (the classic min-PC SIMT rule),
//! so divergence serializes naturally and reconvergence happens when PCs
//! meet again. Barriers park threads; the block releases them when the
//! arrival count reaches the barrier's participation count.
//!
//! # Lane-vectorized execution
//!
//! Register state is stored structure-of-arrays: one contiguous `u64` row of
//! [`WARP_SIZE`] lane slots per `(warp, register)`, padded to a full warp
//! even for partial warps. Register-pure instructions execute as branch-free
//! loops over all 32 lanes under the group's active mask — every lane
//! evaluates (the ALU helpers are total functions, so garbage values in
//! inactive or padding lanes cannot fault) and a mask select decides whether
//! the lane's destination slot is overwritten. The `(op, ty)` dispatch is
//! hoisted out of the lane loop, so the compiler sees a tight
//! auto-vectorizable kernel per instruction form.
//!
//! Memory, shuffle, vote, and barrier instructions have per-lane side
//! effects (loads, stores, sanitizer events) that must be reported in
//! ascending lane order; they gather their operands through per-warp lane
//! buffers and then walk the active lanes exactly like the scalar
//! interpreter, so the sanitizer and barrier-epoch machinery see identical
//! event streams in both modes.
//!
//! The pre-vectorization scalar interpreter (per-lane match-and-dispatch
//! through [`alu`]) is kept as the reference path: `HFUSE_SIM_NO_VECTOR=1`
//! or [`crate::Gpu::set_vector_exec`]`(false)` selects it, and differential
//! tests assert both paths produce bit-identical memory and cycle counts.

use thread_ir::ir::{
    AtomOp, BarCount, BinIr, Inst, ScalarTy, ShflKind, SpecialReg, UnIr, VoteKind,
};
use thread_ir::MemAddr;

use crate::decode::{DecodedKernel, NO_REG};
use crate::error::SimError;
use crate::launch::Launch;
use crate::memory::GpuMemory;
use crate::sanitizer::{AccessCtx, Sanitizer};

/// Threads per warp.
pub const WARP_SIZE: usize = 32;

/// Sentinel in the per-thread barrier column: not parked at any barrier.
const NO_BARRIER: u8 = u8::MAX;

/// What a warp can do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpPeek {
    /// Every thread has exited.
    Done,
    /// All live threads are parked at barriers.
    Blocked,
    /// The min-PC group `mask` (bit i = warp-lane i) can issue `pc`.
    Exec {
        /// Program counter the group will execute.
        pc: usize,
        /// Lane mask of the participating threads.
        mask: u32,
    },
}

/// Instruction classes for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// Simple ALU op (including casts, moves, immediates, specials regs).
    Alu,
    /// Integer divide/remainder.
    Div,
    /// Special function unit (sqrt, exp, ...).
    Special,
    /// Warp shuffle.
    Shuffle,
    /// Shared-memory access.
    SharedMem,
    /// Shared-memory atomic.
    SharedAtomic,
    /// Global-memory access.
    GlobalMem,
    /// Global-memory atomic.
    GlobalAtomic,
    /// Local-memory access (spills / local arrays).
    LocalMem,
    /// Branch / jump / return.
    Control,
    /// Barrier arrival.
    Barrier,
}

impl IssueKind {
    /// Number of latency classes (the size of per-class histograms).
    pub const COUNT: usize = 11;

    /// Every class, in [`Self::index`] order.
    pub const ALL: [IssueKind; Self::COUNT] = [
        IssueKind::Alu,
        IssueKind::Div,
        IssueKind::Special,
        IssueKind::Shuffle,
        IssueKind::SharedMem,
        IssueKind::SharedAtomic,
        IssueKind::GlobalMem,
        IssueKind::GlobalAtomic,
        IssueKind::LocalMem,
        IssueKind::Control,
        IssueKind::Barrier,
    ];

    /// Dense index for histogram arrays (`[u64; IssueKind::COUNT]`).
    pub fn index(self) -> usize {
        match self {
            IssueKind::Alu => 0,
            IssueKind::Div => 1,
            IssueKind::Special => 2,
            IssueKind::Shuffle => 3,
            IssueKind::SharedMem => 4,
            IssueKind::SharedAtomic => 5,
            IssueKind::GlobalMem => 6,
            IssueKind::GlobalAtomic => 7,
            IssueKind::LocalMem => 8,
            IssueKind::Control => 9,
            IssueKind::Barrier => 10,
        }
    }

    /// Short display name (report columns, calibration dumps).
    pub fn name(self) -> &'static str {
        match self {
            IssueKind::Alu => "alu",
            IssueKind::Div => "div",
            IssueKind::Special => "special",
            IssueKind::Shuffle => "shuffle",
            IssueKind::SharedMem => "shared_mem",
            IssueKind::SharedAtomic => "shared_atomic",
            IssueKind::GlobalMem => "global_mem",
            IssueKind::GlobalAtomic => "global_atomic",
            IssueKind::LocalMem => "local_mem",
            IssueKind::Control => "control",
            IssueKind::Barrier => "barrier",
        }
    }
}

/// The result of issuing one group-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Latency/queueing class.
    pub kind: IssueKind,
    /// Global-memory transactions generated (coalescing-aware).
    pub transactions: u32,
    /// Extra serialization cycles (atomic address conflicts).
    pub conflict_extra: u32,
}

/// Execution state of one thread block, stored structure-of-arrays.
///
/// The register file is one flat `u64` vector laid out
/// `[warp][register][lane]` with every warp padded to [`WARP_SIZE`] lanes,
/// so a `(warp, reg)` pair addresses one contiguous cache-aligned row of 32
/// lane slots — the unit the vectorized interpreter operates on. Per-thread
/// control state (PC, done, parked barrier) lives in parallel columns
/// indexed by thread id.
#[derive(Debug, Clone)]
pub struct BlockExec {
    /// Index of the owning launch within the run.
    pub launch_idx: usize,
    /// This block's `blockIdx.x`.
    pub block_idx: u32,
    /// Threads in the block (the padding lanes past this are inert).
    num_threads: usize,
    /// Registers per thread.
    num_regs: usize,
    /// Per-thread local-memory bytes.
    local_stride: usize,
    /// Per-thread program counters.
    pc: Vec<usize>,
    /// Per-thread exit flags.
    done: Vec<bool>,
    /// Per-thread parked-barrier id ([`NO_BARRIER`] when runnable).
    waiting: Vec<u8>,
    /// SoA register lanes: `((warp * num_regs) + reg) * WARP_SIZE + lane`.
    regs: Vec<u64>,
    /// Per-thread local memory, flattened at `local_stride` bytes each.
    local: Vec<u8>,
    /// The block's shared-memory frame (static + dynamic).
    shared: Vec<u8>,
    /// Arrival counters for the 16 named barriers.
    barrier_arrivals: [u32; 16],
}

impl BlockExec {
    /// Creates the initial state for one block of `launch`.
    pub fn new(launch: &Launch, launch_idx: usize, block_idx: u32) -> Self {
        let n = launch.threads_per_block() as usize;
        let kernel = &launch.kernel;
        let num_regs = kernel.num_regs as usize;
        let num_warps = n.div_ceil(WARP_SIZE);
        let local_stride = kernel.local_bytes as usize;
        BlockExec {
            launch_idx,
            block_idx,
            num_threads: n,
            num_regs,
            local_stride,
            pc: vec![0; n],
            done: vec![false; n],
            waiting: vec![NO_BARRIER; n],
            regs: vec![0; num_warps * num_regs * WARP_SIZE],
            local: vec![0; n * local_stride],
            shared: vec![0; launch.shared_bytes_per_block() as usize],
            barrier_arrivals: [0; 16],
        }
    }

    /// Number of warps in the block.
    pub fn num_warps(&self) -> usize {
        self.num_threads.div_ceil(WARP_SIZE)
    }

    /// True once every thread has exited.
    pub fn all_done(&self) -> bool {
        self.done.iter().all(|&d| d)
    }

    /// Number of warps with at least one unfinished thread.
    pub fn live_warps(&self) -> u32 {
        (0..self.num_warps())
            .filter(|&w| {
                let (s, e) = self.warp_bounds(w);
                self.done[s..e].iter().any(|&d| !d)
            })
            .count() as u32
    }

    /// `[start, end)` thread ids of a warp (`end` is clipped for the last,
    /// possibly partial, warp).
    fn warp_bounds(&self, warp: usize) -> (usize, usize) {
        let start = warp * WARP_SIZE;
        let end = (start + WARP_SIZE).min(self.num_threads);
        (start, end)
    }

    /// Index of the first lane slot of `(warp, reg)` in the SoA file.
    #[inline(always)]
    fn reg_base(&self, warp: usize, reg: u32) -> usize {
        (warp * self.num_regs + reg as usize) * WARP_SIZE
    }

    /// The 32 lane slots of `(warp, reg)`.
    #[inline(always)]
    fn warp_reg(&self, warp: usize, reg: u32) -> &[u64; WARP_SIZE] {
        let b = self.reg_base(warp, reg);
        self.regs[b..b + WARP_SIZE]
            .try_into()
            .expect("lane row is WARP_SIZE long")
    }

    /// Mutable 32 lane slots of `(warp, reg)`.
    #[inline(always)]
    fn warp_reg_mut(&mut self, warp: usize, reg: u32) -> &mut [u64; WARP_SIZE] {
        let b = self.reg_base(warp, reg);
        (&mut self.regs[b..b + WARP_SIZE])
            .try_into()
            .expect("lane row is WARP_SIZE long")
    }

    /// Copy of the 32 lane slots of `(warp, reg)` — the gather buffer the
    /// vectorized ops read through (also sidesteps `dst`/`src` aliasing).
    #[inline(always)]
    fn warp_reg_copy(&self, warp: usize, reg: u32) -> [u64; WARP_SIZE] {
        *self.warp_reg(warp, reg)
    }

    /// One thread's value of `reg` (scalar path and cross-warp helpers).
    #[inline(always)]
    fn lane_reg(&self, tid: usize, reg: u32) -> u64 {
        self.regs[self.reg_base(tid / WARP_SIZE, reg) + tid % WARP_SIZE]
    }

    /// Sets one thread's value of `reg`.
    #[inline(always)]
    fn set_lane_reg(&mut self, tid: usize, reg: u32, v: u64) {
        let i = self.reg_base(tid / WARP_SIZE, reg) + tid % WARP_SIZE;
        self.regs[i] = v;
    }

    /// Advances the PC of every active lane to `next`.
    #[inline(always)]
    fn advance(&mut self, warp: usize, mask: u32, next: usize) {
        let start = warp * WARP_SIZE;
        for lane in (Lanes { mask }) {
            self.pc[start + lane] = next;
        }
    }

    /// Decodes the memory space a `Ld`/`St`/`Atom` at the group's PC will
    /// touch, by inspecting the first active lane's (already computed)
    /// address register. Returns `None` for non-memory instructions.
    pub fn peek_space(
        &self,
        warp: usize,
        mask: u32,
        pc: usize,
        prog: &DecodedKernel,
    ) -> Option<thread_ir::Space> {
        let addr_reg = prog.insts[pc].addr_reg;
        if addr_reg == NO_REG {
            return None;
        }
        let lane = mask.trailing_zeros() as usize;
        Some(MemAddr(self.regs[self.reg_base(warp, addr_reg) + lane]).space())
    }

    /// Finds the min-PC runnable group of a warp.
    pub fn peek_warp(&self, warp: usize) -> WarpPeek {
        let (start, end) = self.warp_bounds(warp);
        let mut min_pc = usize::MAX;
        let mut any_live = false;
        for tid in start..end {
            if self.done[tid] {
                continue;
            }
            any_live = true;
            if self.waiting[tid] == NO_BARRIER && self.pc[tid] < min_pc {
                min_pc = self.pc[tid];
            }
        }
        if !any_live {
            return WarpPeek::Done;
        }
        if min_pc == usize::MAX {
            return WarpPeek::Blocked;
        }
        let mut mask = 0u32;
        for tid in start..end {
            if !self.done[tid] && self.waiting[tid] == NO_BARRIER && self.pc[tid] == min_pc {
                mask |= 1 << (tid - start);
            }
        }
        WarpPeek::Exec { pc: min_pc, mask }
    }

    /// Executes instruction `pc` for the lane group `mask` of `warp`,
    /// reading the instruction from the pre-decoded buffer `prog`.
    /// When `san` is given, memory accesses and barrier events are also
    /// reported to the sanitizer.
    ///
    /// Register-pure instructions run lane-vectorized unless the decoded
    /// kernel was built with vectorization off (the `HFUSE_SIM_NO_VECTOR`
    /// escape hatch), in which case the scalar per-lane reference
    /// interpreter runs; both produce bit-identical state. Instructions
    /// with per-lane side effects (memory, shuffles, votes, barriers) share
    /// one implementation that reports events in ascending lane order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on out-of-bounds accesses or malformed
    /// addresses — the simulation should be aborted.
    ///
    /// # Panics
    ///
    /// Panics if `mask` does not match runnable threads at `pc` (engine
    /// bug, not user error).
    #[allow(clippy::too_many_arguments)]
    pub fn exec_group(
        &mut self,
        launch: &Launch,
        prog: &DecodedKernel,
        mem: &mut GpuMemory,
        warp: usize,
        pc: usize,
        mask: u32,
        seg_bytes: u32,
        mut san: Option<&mut Sanitizer>,
    ) -> Result<ExecOutcome, SimError> {
        let kernel = &launch.kernel;
        let dinst = &prog.insts[pc];
        let warp_start = warp * WARP_SIZE;

        // Warp-uniform fast path: when the whole group reads identical
        // operand values, evaluate once and broadcast instead of a full
        // lane loop — the degenerate single-chunk case of the vectorized
        // interpreter. Timing-transparent — the outcome kind is identical
        // to both full paths'.
        if dinst.uniform_eligible && mask.count_ones() > 1 {
            if let Some(out) = self.exec_uniform_group(
                launch,
                &dinst.inst,
                warp,
                pc,
                mask,
                dinst.statically_uniform,
            ) {
                return Ok(out);
            }
        }

        let inst = &dinst.inst;
        let lanes: Lanes = Lanes { mask };
        let san_ctx = AccessCtx {
            kernel: &kernel.name,
            launch: self.launch_idx,
            block: self.block_idx,
            nthreads: launch.threads_per_block(),
        };

        let simple = |kind: IssueKind| ExecOutcome {
            kind,
            transactions: 0,
            conflict_extra: 0,
        };

        match inst {
            Inst::Imm { dst, value } => {
                if prog.vector {
                    fill_masked(self.warp_reg_mut(warp, *dst), mask, *value);
                } else {
                    for lane in lanes {
                        self.set_lane_reg(warp_start + lane, *dst, *value);
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Alu))
            }
            Inst::Mov { dst, src } => {
                if prog.vector {
                    let v = self.warp_reg_copy(warp, *src);
                    lanewise1(self.warp_reg_mut(warp, *dst), &v, mask, |x| x);
                } else {
                    for lane in lanes {
                        let tid = warp_start + lane;
                        let v = self.lane_reg(tid, *src);
                        self.set_lane_reg(tid, *dst, v);
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Alu))
            }
            Inst::Bin { op, ty, dst, a, b } => {
                if prog.vector {
                    let (op, ty) = (*op, *ty);
                    let va = self.warp_reg_copy(warp, *a);
                    let vb = self.warp_reg_copy(warp, *b);
                    lanewise2(self.warp_reg_mut(warp, *dst), &va, &vb, mask, |x, y| {
                        alu::bin(op, ty, x, y)
                    });
                } else {
                    for lane in lanes {
                        let tid = warp_start + lane;
                        let va = self.lane_reg(tid, *a);
                        let vb = self.lane_reg(tid, *b);
                        self.set_lane_reg(tid, *dst, alu::bin(*op, *ty, va, vb));
                    }
                }
                self.advance(warp, mask, pc + 1);
                // Divides are iterative on real hardware for integers and
                // a multi-instruction reciprocal sequence for floats.
                let kind = if matches!(op, BinIr::Div | BinIr::Rem) {
                    IssueKind::Div
                } else {
                    IssueKind::Alu
                };
                Ok(simple(kind))
            }
            Inst::Un { op, ty, dst, a } => {
                if prog.vector {
                    let (op, ty) = (*op, *ty);
                    let va = self.warp_reg_copy(warp, *a);
                    lanewise1(self.warp_reg_mut(warp, *dst), &va, mask, |x| {
                        alu::un(op, ty, x)
                    });
                } else {
                    for lane in lanes {
                        let tid = warp_start + lane;
                        let va = self.lane_reg(tid, *a);
                        self.set_lane_reg(tid, *dst, alu::un(*op, *ty, va));
                    }
                }
                self.advance(warp, mask, pc + 1);
                let kind = match op {
                    UnIr::Sqrt | UnIr::Rsqrt | UnIr::Exp | UnIr::Log => IssueKind::Special,
                    _ => IssueKind::Alu,
                };
                Ok(simple(kind))
            }
            Inst::Cast { dst, src, from, to } => {
                if prog.vector {
                    let (from, to) = (*from, *to);
                    let v = self.warp_reg_copy(warp, *src);
                    lanewise1(self.warp_reg_mut(warp, *dst), &v, mask, |x| {
                        alu::cast(from, to, x)
                    });
                } else {
                    for lane in lanes {
                        let tid = warp_start + lane;
                        let v = self.lane_reg(tid, *src);
                        self.set_lane_reg(tid, *dst, alu::cast(*from, *to, v));
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Alu))
            }
            Inst::Special { dst, reg } => {
                if prog.vector {
                    // The value is pure arithmetic on the thread id, so
                    // padding lanes are harmless to evaluate.
                    let mut vals = [0u64; WARP_SIZE];
                    for (l, v) in vals.iter_mut().enumerate() {
                        *v = self.special_value(launch, *reg, warp_start + l);
                    }
                    let d = self.warp_reg_mut(warp, *dst);
                    for l in 0..WARP_SIZE {
                        d[l] = if mask & (1 << l) != 0 { vals[l] } else { d[l] };
                    }
                } else {
                    for lane in lanes {
                        let tid = warp_start + lane;
                        let v = self.special_value(launch, *reg, tid);
                        self.set_lane_reg(tid, *dst, v);
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Alu))
            }
            Inst::LdParam { dst, index } => {
                let bits = launch.args[*index as usize].to_bits();
                if prog.vector {
                    fill_masked(self.warp_reg_mut(warp, *dst), mask, bits);
                } else {
                    for lane in lanes {
                        self.set_lane_reg(warp_start + lane, *dst, bits);
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Alu))
            }
            Inst::SharedAddr { dst, offset } => {
                let addr = MemAddr::shared(*offset).0;
                if prog.vector {
                    fill_masked(self.warp_reg_mut(warp, *dst), mask, addr);
                } else {
                    for lane in lanes {
                        self.set_lane_reg(warp_start + lane, *dst, addr);
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Alu))
            }
            Inst::LocalAddr { dst, offset } => {
                let addr = MemAddr::local(*offset).0;
                if prog.vector {
                    fill_masked(self.warp_reg_mut(warp, *dst), mask, addr);
                } else {
                    for lane in lanes {
                        self.set_lane_reg(warp_start + lane, *dst, addr);
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Alu))
            }
            Inst::Ld { ty, dst, addr } => {
                // Gather addresses through the per-warp lane buffer, then
                // perform the actual loads (and sanitizer events) in
                // ascending lane order — the same event stream as the
                // scalar interpreter.
                let addrs = self.warp_reg_copy(warp, *addr);
                let mut vals = [0u64; WARP_SIZE];
                let mut segs = SegmentSet::new();
                let mut kind = IssueKind::SharedMem;
                for lane in lanes {
                    let tid = warp_start + lane;
                    let a = MemAddr(addrs[lane]);
                    // Report out-of-bounds *before* the load faults, so the
                    // sanitizer's finding survives the aborted run.
                    if let Some(s) = san.as_deref_mut() {
                        if let Some(limit) = self.alloc_limit(mem, a) {
                            let w = ty.size_bytes();
                            if u64::from(a.offset()) + u64::from(w) > u64::from(limit) {
                                s.on_out_of_bounds(&san_ctx, tid as u32, pc, a, w, limit, false);
                            }
                        }
                    }
                    vals[lane] = self.load(mem, tid, a, *ty)?;
                    if let Some(s) = san.as_deref_mut() {
                        s.on_access(&san_ctx, tid as u32, pc, a, ty.size_bytes(), false, false);
                    }
                    match a.space() {
                        thread_ir::Space::Global => {
                            kind = IssueKind::GlobalMem;
                            segs.insert(a, seg_bytes);
                        }
                        thread_ir::Space::Local => kind = IssueKind::LocalMem,
                        thread_ir::Space::Shared => {}
                    }
                }
                let d = self.warp_reg_mut(warp, *dst);
                for l in 0..WARP_SIZE {
                    d[l] = if mask & (1 << l) != 0 { vals[l] } else { d[l] };
                }
                self.advance(warp, mask, pc + 1);
                Ok(ExecOutcome {
                    kind,
                    transactions: segs.count(),
                    conflict_extra: 0,
                })
            }
            Inst::St { ty, addr, val } => {
                let addrs = self.warp_reg_copy(warp, *addr);
                let vals = self.warp_reg_copy(warp, *val);
                let mut segs = SegmentSet::new();
                let mut kind = IssueKind::SharedMem;
                for lane in lanes {
                    let tid = warp_start + lane;
                    let a = MemAddr(addrs[lane]);
                    if let Some(s) = san.as_deref_mut() {
                        if let Some(limit) = self.alloc_limit(mem, a) {
                            let w = ty.size_bytes();
                            if u64::from(a.offset()) + u64::from(w) > u64::from(limit) {
                                s.on_out_of_bounds(&san_ctx, tid as u32, pc, a, w, limit, true);
                            }
                        }
                    }
                    self.store(mem, tid, a, *ty, vals[lane])?;
                    if let Some(s) = san.as_deref_mut() {
                        s.on_access(&san_ctx, tid as u32, pc, a, ty.size_bytes(), true, false);
                    }
                    match a.space() {
                        thread_ir::Space::Global => {
                            kind = IssueKind::GlobalMem;
                            segs.insert(a, seg_bytes);
                        }
                        thread_ir::Space::Local => kind = IssueKind::LocalMem,
                        thread_ir::Space::Shared => {}
                    }
                }
                self.advance(warp, mask, pc + 1);
                Ok(ExecOutcome {
                    kind,
                    transactions: segs.count(),
                    conflict_extra: 0,
                })
            }
            Inst::Atom {
                op,
                ty,
                dst,
                addr,
                val,
            } => {
                // Atomics are inherently serial per lane (lane i's store
                // must be visible to lane j > i on the same address); only
                // the operand gather and result scatter are vector-shaped.
                let addrs = self.warp_reg_copy(warp, *addr);
                let vals = self.warp_reg_copy(warp, *val);
                let mut olds = [0u64; WARP_SIZE];
                let mut segs = SegmentSet::new();
                let mut kind = IssueKind::SharedAtomic;
                let mut sorted_addrs: Vec<u64> = Vec::new();
                for lane in lanes {
                    let tid = warp_start + lane;
                    let a = MemAddr(addrs[lane]);
                    let v = vals[lane];
                    if let Some(s) = san.as_deref_mut() {
                        if let Some(limit) = self.alloc_limit(mem, a) {
                            let w = ty.size_bytes();
                            if u64::from(a.offset()) + u64::from(w) > u64::from(limit) {
                                s.on_out_of_bounds(&san_ctx, tid as u32, pc, a, w, limit, true);
                            }
                        }
                    }
                    let old = self.load(mem, tid, a, *ty)?;
                    let new = match op {
                        AtomOp::Add => alu::bin(BinIr::Add, *ty, old, v),
                        AtomOp::Max => alu::bin(BinIr::Max, *ty, old, v),
                        AtomOp::Exch => v,
                    };
                    self.store(mem, tid, a, *ty, new)?;
                    if let Some(s) = san.as_deref_mut() {
                        s.on_access(&san_ctx, tid as u32, pc, a, ty.size_bytes(), true, true);
                    }
                    olds[lane] = old;
                    sorted_addrs.push(a.0);
                    if a.space() == thread_ir::Space::Global {
                        kind = IssueKind::GlobalAtomic;
                        segs.insert(a, seg_bytes);
                    }
                }
                let d = self.warp_reg_mut(warp, *dst);
                for l in 0..WARP_SIZE {
                    d[l] = if mask & (1 << l) != 0 { olds[l] } else { d[l] };
                }
                self.advance(warp, mask, pc + 1);
                // Serialization cost: colliding addresses retry one by one.
                sorted_addrs.sort_unstable();
                let conflicts = sorted_addrs.windows(2).filter(|w| w[0] == w[1]).count() as u32;
                Ok(ExecOutcome {
                    kind,
                    transactions: segs.count(),
                    conflict_extra: conflicts,
                })
            }
            Inst::Shfl {
                kind,
                dst,
                src,
                lane: lane_reg,
                width,
            } => {
                // The source row is read in full before any write (dst may
                // alias src); lanes past the block's thread count fall back
                // to the reading lane's own value, mirroring out-of-range
                // shuffle semantics.
                let srcs = self.warp_reg_copy(warp, *src);
                let ops = self.warp_reg_copy(warp, *lane_reg);
                let wids = self.warp_reg_copy(warp, *width);
                let (ws, we) = self.warp_bounds(warp);
                let valid = we - ws;
                let mut vals = [0u64; WARP_SIZE];
                for lane in lanes {
                    let operand = ops[lane] as u32;
                    let w = (wids[lane] as u32).clamp(1, 32);
                    let lane_u = lane as u32;
                    let src_lane = match kind {
                        ShflKind::Xor => lane_u ^ operand,
                        ShflKind::Down => {
                            let base = lane_u / w * w;
                            let within = lane_u % w + operand;
                            if within >= w {
                                lane_u
                            } else {
                                base + within
                            }
                        }
                    };
                    vals[lane] = if (src_lane as usize) < valid {
                        srcs[src_lane as usize]
                    } else {
                        srcs[lane]
                    };
                }
                let d = self.warp_reg_mut(warp, *dst);
                for l in 0..WARP_SIZE {
                    d[l] = if mask & (1 << l) != 0 { vals[l] } else { d[l] };
                }
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Shuffle))
            }
            Inst::Vote { kind, dst, src } => {
                // Participants are the lanes of the executing group (the
                // CUDA `_sync` mask is evaluated and dropped at lowering;
                // fused-kernel guards are warp-uniform so the group *is*
                // the active mask).
                let srcs = self.warp_reg_copy(warp, *src);
                let mut ballot = 0u32;
                for lane in lanes {
                    if srcs[lane] != 0 {
                        ballot |= 1 << lane;
                    }
                }
                let value = match kind {
                    VoteKind::Ballot => u64::from(ballot),
                    VoteKind::Any => u64::from(ballot != 0),
                    VoteKind::All => u64::from(ballot == mask),
                };
                fill_masked(self.warp_reg_mut(warp, *dst), mask, value);
                self.advance(warp, mask, pc + 1);
                Ok(simple(IssueKind::Shuffle))
            }
            Inst::Bar { id, count } => {
                let expected = match count {
                    BarCount::All => launch.threads_per_block(),
                    BarCount::Fixed(n) => *n,
                };
                let fixed = matches!(count, BarCount::Fixed(_));
                if let Some(s) = san.as_deref_mut() {
                    s.on_barrier_arrival(&san_ctx, *id, expected, fixed);
                }
                let group_size = mask.count_ones();
                let id8 = *id as u8;
                for lane in lanes {
                    let tid = warp_start + lane;
                    self.waiting[tid] = id8;
                    self.pc[tid] = pc + 1;
                }
                self.barrier_arrivals[*id as usize] += group_size;
                if self.barrier_arrivals[*id as usize] >= expected {
                    self.barrier_arrivals[*id as usize] -= expected;
                    let collect = san.is_some();
                    let mut released: Vec<u32> = Vec::new();
                    for tid in 0..self.num_threads {
                        if self.waiting[tid] == id8 {
                            self.waiting[tid] = NO_BARRIER;
                            if collect {
                                released.push(tid as u32);
                            }
                        }
                    }
                    if let Some(s) = san {
                        s.on_barrier_release(&san_ctx, *id, expected, fixed, &released);
                    }
                }
                Ok(simple(IssueKind::Barrier))
            }
            Inst::Bra {
                cond,
                if_zero,
                target,
            } => {
                let conds = self.warp_reg_copy(warp, *cond);
                for lane in lanes {
                    let taken = (conds[lane] == 0) == *if_zero;
                    self.pc[warp_start + lane] = if taken { *target } else { pc + 1 };
                }
                Ok(simple(IssueKind::Control))
            }
            Inst::Jmp { target } => {
                self.advance(warp, mask, *target);
                Ok(simple(IssueKind::Control))
            }
            Inst::Ret => {
                for lane in lanes {
                    self.done[warp_start + lane] = true;
                }
                Ok(simple(IssueKind::Control))
            }
        }
    }

    /// True when every active lane of the group holds the same value in
    /// `reg`.
    fn lanes_uniform(&self, warp: usize, mask: u32, reg: u32) -> bool {
        let row = self.warp_reg(warp, reg);
        let v = row[mask.trailing_zeros() as usize];
        Lanes { mask }.all(|lane| row[lane] == v)
    }

    /// [`Self::lanes_uniform`] with a static shortcut: when dataflow already
    /// proved the register uniform at this PC the runtime scan is skipped
    /// (validated by a debug assertion, which the differential and fuzz
    /// test suites run with enabled).
    fn group_uniform(&self, warp: usize, mask: u32, reg: u32, proven: bool) -> bool {
        if proven {
            debug_assert!(
                self.lanes_uniform(warp, mask, reg),
                "static uniformity fact violated at runtime for reg {reg}"
            );
            return true;
        }
        self.lanes_uniform(warp, mask, reg)
    }

    /// The warp-uniform fast path: evaluates a register-pure instruction
    /// once using the first active lane's operands and broadcasts the
    /// result to the whole group, provided every active lane reads
    /// identical operand values. The operand comparison is a runtime scan
    /// unless `proven` says static analysis already established uniformity
    /// at this PC. Returns `None` when the operands diverge (the caller
    /// falls back to the full lane loop). The `IssueKind` mapping mirrors
    /// the full paths exactly so timing is unchanged.
    fn exec_uniform_group(
        &mut self,
        launch: &Launch,
        inst: &Inst,
        warp: usize,
        pc: usize,
        mask: u32,
        proven: bool,
    ) -> Option<ExecOutcome> {
        let first = warp * WARP_SIZE + mask.trailing_zeros() as usize;
        let (dst, value, kind) = match inst {
            Inst::Mov { dst, src } => {
                if !self.group_uniform(warp, mask, *src, proven) {
                    return None;
                }
                let v = self.lane_reg(first, *src);
                (*dst, v, IssueKind::Alu)
            }
            Inst::Bin { op, ty, dst, a, b } => {
                if !self.group_uniform(warp, mask, *a, proven)
                    || !self.group_uniform(warp, mask, *b, proven)
                {
                    return None;
                }
                let va = self.lane_reg(first, *a);
                let vb = self.lane_reg(first, *b);
                let kind = if matches!(op, BinIr::Div | BinIr::Rem) {
                    IssueKind::Div
                } else {
                    IssueKind::Alu
                };
                (*dst, alu::bin(*op, *ty, va, vb), kind)
            }
            Inst::Un { op, ty, dst, a } => {
                if !self.group_uniform(warp, mask, *a, proven) {
                    return None;
                }
                let va = self.lane_reg(first, *a);
                let kind = match op {
                    UnIr::Sqrt | UnIr::Rsqrt | UnIr::Exp | UnIr::Log => IssueKind::Special,
                    _ => IssueKind::Alu,
                };
                (*dst, alu::un(*op, *ty, va), kind)
            }
            Inst::Cast { dst, src, from, to } => {
                if !self.group_uniform(warp, mask, *src, proven) {
                    return None;
                }
                let v = self.lane_reg(first, *src);
                (*dst, alu::cast(*from, *to, v), IssueKind::Alu)
            }
            // Decode only marks block-uniform special registers eligible,
            // so the value is the same for every thread by construction.
            Inst::Special { dst, reg } => (
                *dst,
                self.special_value(launch, *reg, first),
                IssueKind::Alu,
            ),
            _ => return None,
        };
        fill_masked(self.warp_reg_mut(warp, dst), mask, value);
        self.advance(warp, mask, pc + 1);
        Some(ExecOutcome {
            kind,
            transactions: 0,
            conflict_extra: 0,
        })
    }

    fn special_value(&self, launch: &Launch, reg: SpecialReg, tid: usize) -> u64 {
        let (bx, by, _bz) = launch.block_dim;
        let linear = tid as u32;
        let v: u32 = match reg {
            SpecialReg::ThreadIdxX => linear % bx,
            SpecialReg::ThreadIdxY => linear / bx % by,
            SpecialReg::ThreadIdxZ => linear / (bx * by),
            SpecialReg::BlockIdxX => self.block_idx,
            SpecialReg::BlockIdxY | SpecialReg::BlockIdxZ => 0,
            SpecialReg::BlockDimX => launch.block_dim.0,
            SpecialReg::BlockDimY => launch.block_dim.1,
            SpecialReg::BlockDimZ => launch.block_dim.2,
            SpecialReg::GridDimX => launch.grid_dim,
            SpecialReg::GridDimY | SpecialReg::GridDimZ => 1,
        };
        u64::from(v)
    }

    /// Allocation size in bytes behind a lane's address: the block's shared
    /// allocation, the thread's local slab, or the global buffer. `None`
    /// for an unknown global buffer (the load/store faults with its own
    /// message).
    fn alloc_limit(&self, mem: &GpuMemory, addr: MemAddr) -> Option<u32> {
        match addr.space() {
            thread_ir::Space::Global => mem.try_len_bytes(addr.buffer()).map(|n| n as u32),
            thread_ir::Space::Shared => Some(self.shared.len() as u32),
            thread_ir::Space::Local => Some(self.local_stride as u32),
        }
    }

    fn load(
        &self,
        mem: &GpuMemory,
        tid: usize,
        addr: MemAddr,
        ty: ScalarTy,
    ) -> Result<u64, SimError> {
        let w = ty.size_bytes();
        let raw = match addr.space() {
            thread_ir::Space::Global => mem.load(addr.buffer(), addr.offset(), w)?,
            thread_ir::Space::Shared => read_bytes(&self.shared, addr.offset(), w, "shared load")?,
            thread_ir::Space::Local => {
                let s = tid * self.local_stride;
                read_bytes(
                    &self.local[s..s + self.local_stride],
                    addr.offset(),
                    w,
                    "local load",
                )?
            }
        };
        Ok(alu::canon_load(ty, raw))
    }

    fn store(
        &mut self,
        mem: &mut GpuMemory,
        tid: usize,
        addr: MemAddr,
        ty: ScalarTy,
        value: u64,
    ) -> Result<(), SimError> {
        let w = ty.size_bytes();
        match addr.space() {
            thread_ir::Space::Global => mem.store(addr.buffer(), addr.offset(), w, value),
            thread_ir::Space::Shared => {
                write_bytes(&mut self.shared, addr.offset(), w, value, "shared store")
            }
            thread_ir::Space::Local => {
                let s = tid * self.local_stride;
                write_bytes(
                    &mut self.local[s..s + self.local_stride],
                    addr.offset(),
                    w,
                    value,
                    "local store",
                )
            }
        }
    }
}

/// Branch-free masked unary lane loop: every lane evaluates `f` (total on
/// garbage inputs), a mask select keeps inactive destinations intact.
#[inline(always)]
fn lanewise1(d: &mut [u64; WARP_SIZE], a: &[u64; WARP_SIZE], mask: u32, f: impl Fn(u64) -> u64) {
    for l in 0..WARP_SIZE {
        let v = f(a[l]);
        d[l] = if mask & (1 << l) != 0 { v } else { d[l] };
    }
}

/// Branch-free masked binary lane loop (see [`lanewise1`]).
#[inline(always)]
fn lanewise2(
    d: &mut [u64; WARP_SIZE],
    a: &[u64; WARP_SIZE],
    b: &[u64; WARP_SIZE],
    mask: u32,
    f: impl Fn(u64, u64) -> u64,
) {
    for l in 0..WARP_SIZE {
        let v = f(a[l], b[l]);
        d[l] = if mask & (1 << l) != 0 { v } else { d[l] };
    }
}

/// Branch-free masked broadcast of one value into the active lanes.
#[inline(always)]
fn fill_masked(d: &mut [u64; WARP_SIZE], mask: u32, value: u64) {
    for (l, slot) in d.iter_mut().enumerate() {
        *slot = if mask & (1 << l) != 0 { value } else { *slot };
    }
}

fn read_bytes(buf: &[u8], offset: u32, width: u32, what: &str) -> Result<u64, SimError> {
    let (o, w) = (offset as usize, width as usize);
    if o + w > buf.len() {
        return Err(SimError::new(format!(
            "{what} out of bounds: offset {o}+{w} in {} bytes",
            buf.len()
        )));
    }
    let mut word = [0u8; 8];
    word[..w].copy_from_slice(&buf[o..o + w]);
    Ok(u64::from_le_bytes(word))
}

fn write_bytes(
    buf: &mut [u8],
    offset: u32,
    width: u32,
    value: u64,
    what: &str,
) -> Result<(), SimError> {
    let (o, w) = (offset as usize, width as usize);
    if o + w > buf.len() {
        return Err(SimError::new(format!(
            "{what} out of bounds: offset {o}+{w} in {} bytes",
            buf.len()
        )));
    }
    buf[o..o + w].copy_from_slice(&value.to_le_bytes()[..w]);
    Ok(())
}

/// Iterator over set lanes of a mask.
#[derive(Debug, Clone, Copy)]
struct Lanes {
    mask: u32,
}

impl Iterator for Lanes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.mask == 0 {
            return None;
        }
        let lane = self.mask.trailing_zeros() as usize;
        self.mask &= self.mask - 1;
        Some(lane)
    }
}

/// Distinct-memory-segment counter for coalescing.
struct SegmentSet {
    segs: Vec<u64>,
}

impl SegmentSet {
    fn new() -> Self {
        Self {
            segs: Vec::with_capacity(4),
        }
    }

    fn insert(&mut self, addr: MemAddr, seg_bytes: u32) {
        let key = (u64::from(addr.buffer()) << 32) | u64::from(addr.offset() / seg_bytes);
        if !self.segs.contains(&key) {
            self.segs.push(key);
        }
    }

    fn count(&self) -> u32 {
        self.segs.len() as u32
    }
}

pub use thread_ir::alu;

#[cfg(test)]
mod tests {
    use super::alu;
    use super::*;

    #[test]
    fn lanes_iterates_set_bits() {
        let lanes: Vec<usize> = Lanes { mask: 0b1010_0001 }.collect();
        assert_eq!(lanes, vec![0, 5, 7]);
    }

    #[test]
    fn issue_kind_index_round_trips() {
        for (i, k) in IssueKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let names: std::collections::HashSet<_> = IssueKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), IssueKind::COUNT, "names must be unique");
    }

    #[test]
    fn masked_lane_helpers_leave_inactive_lanes_intact() {
        let mut d = [7u64; WARP_SIZE];
        fill_masked(&mut d, 0b101, 9);
        assert_eq!(d[0], 9);
        assert_eq!(d[1], 7);
        assert_eq!(d[2], 9);
        assert_eq!(d[3], 7);

        let a = [3u64; WARP_SIZE];
        let b = [4u64; WARP_SIZE];
        let mut d = [0u64; WARP_SIZE];
        lanewise2(&mut d, &a, &b, 0b10, |x, y| x + y);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 7);

        let mut d = [1u64; WARP_SIZE];
        lanewise1(&mut d, &a, 0xffff_ffff, |x| x * 2);
        assert!(d.iter().all(|&v| v == 6));
    }

    #[test]
    fn segment_set_counts_distinct_lines() {
        let mut s = SegmentSet::new();
        s.insert(MemAddr::global(0, 0), 128);
        s.insert(MemAddr::global(0, 64), 128); // same 128B line
        s.insert(MemAddr::global(0, 128), 128); // next line
        s.insert(MemAddr::global(1, 0), 128); // other buffer
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn alu_i32_canonicalizes_sign() {
        let r = alu::bin(BinIr::Sub, ScalarTy::I32, 0, 1);
        assert_eq!(r, u64::MAX, "-1 must be sign-extended");
        assert_eq!(alu::bin(BinIr::Lt, ScalarTy::I32, r, 0), 1, "-1 < 0");
    }

    #[test]
    fn alu_u32_wraps_and_zero_extends() {
        let r = alu::bin(BinIr::Sub, ScalarTy::U32, 0, 1);
        assert_eq!(r, u64::from(u32::MAX));
        assert_eq!(alu::bin(BinIr::Gt, ScalarTy::U32, r, 0), 1, "u32::MAX > 0");
    }

    #[test]
    fn alu_f32_round_trip() {
        let a = u64::from(1.5f32.to_bits());
        let b = u64::from(2.0f32.to_bits());
        let r = alu::bin(BinIr::Mul, ScalarTy::F32, a, b);
        assert_eq!(f32::from_bits(r as u32), 3.0);
    }

    #[test]
    fn division_by_zero_is_zero_for_ints() {
        assert_eq!(alu::bin(BinIr::Div, ScalarTy::I32, 5, 0), 0);
        assert_eq!(alu::bin(BinIr::Rem, ScalarTy::U64, 5, 0), 0);
    }

    #[test]
    fn float_division_by_zero_is_inf() {
        let one = u64::from(1.0f32.to_bits());
        let zero = u64::from(0.0f32.to_bits());
        let r = alu::bin(BinIr::Div, ScalarTy::F32, one, zero);
        assert!(f32::from_bits(r as u32).is_infinite());
    }

    #[test]
    fn oversized_shifts_clamp() {
        assert_eq!(alu::bin(BinIr::Shl, ScalarTy::U32, 1, 32), 0);
        // arithmetic right shift of a negative value saturates to -1
        let neg = alu::bin(BinIr::Sub, ScalarTy::I32, 0, 8);
        assert_eq!(alu::bin(BinIr::Shr, ScalarTy::I32, neg, 40), u64::MAX);
    }

    #[test]
    fn cast_f32_to_i32_truncates() {
        let v = u64::from(3.9f32.to_bits());
        assert_eq!(alu::cast(ScalarTy::F32, ScalarTy::I32, v), 3);
        let v = u64::from((-3.9f32).to_bits());
        assert_eq!(alu::cast(ScalarTy::F32, ScalarTy::I32, v) as i64, -3);
    }

    #[test]
    fn cast_i32_to_f32() {
        let v = alu::bin(BinIr::Sub, ScalarTy::I32, 0, 7); // -7
        let r = alu::cast(ScalarTy::I32, ScalarTy::F32, v);
        assert_eq!(f32::from_bits(r as u32), -7.0);
    }

    #[test]
    fn canon_load_sign_extends_i32() {
        assert_eq!(alu::canon_load(ScalarTy::I32, 0xffff_ffff), u64::MAX);
        assert_eq!(alu::canon_load(ScalarTy::U32, 0xffff_ffff), 0xffff_ffff);
    }

    #[test]
    fn unary_not_and_neg() {
        assert_eq!(alu::un(UnIr::Not, ScalarTy::I32, 0), 1);
        assert_eq!(alu::un(UnIr::Not, ScalarTy::I32, 5), 0);
        let nz = u64::from((-0.0f32).to_bits());
        assert_eq!(alu::un(UnIr::Not, ScalarTy::F32, nz), 1, "-0.0 is falsy");
        assert_eq!(alu::un(UnIr::Neg, ScalarTy::I32, 5) as i64, -5);
    }

    #[test]
    fn special_functions() {
        let four = u64::from(4.0f32.to_bits());
        assert_eq!(
            f32::from_bits(alu::un(UnIr::Sqrt, ScalarTy::F32, four) as u32),
            2.0
        );
        assert_eq!(
            f32::from_bits(alu::un(UnIr::Rsqrt, ScalarTy::F32, four) as u32),
            0.5
        );
    }
}
