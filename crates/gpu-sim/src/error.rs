use std::fmt;

/// A runtime error raised while simulating a kernel (the GPU analogue of a
/// fault: out-of-bounds access, bad launch configuration, or a barrier
/// deadlock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    message: String,
}

impl SimError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_message() {
        let e = SimError::new("out of bounds");
        assert_eq!(e.to_string(), "simulation error: out of bounds");
        assert_eq!(e.message(), "out of bounds");
    }
}
