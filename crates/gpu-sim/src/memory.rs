//! Device (global) memory: a pool of byte-addressable buffers.
//!
//! Pointer parameter values encode a [`BufferId`] plus byte offset (see
//! [`thread_ir::MemAddr`]); all accesses are bounds-checked, so kernel bugs
//! surface as [`SimError`]s instead of silent corruption.
//!
//! Buffers are copy-on-write: cloning a [`GpuMemory`] (or the [`Gpu`] that
//! owns it) only bumps reference counts, and a buffer's bytes are copied the
//! first time one clone stores to it. The fusion search clones the device
//! per profiled candidate, so this turns O(device-memory) snapshots into
//! O(buffer-count) ones.
//!
//! [`Gpu`]: crate::timing::Gpu

use std::sync::Arc;

use crate::error::SimError;

/// Handle to an allocated device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) u32);

impl BufferId {
    /// The raw index (used to build tagged addresses).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// The global-memory pool.
#[derive(Debug, Default, Clone)]
pub struct GpuMemory {
    buffers: Vec<Arc<Vec<u8>>>,
}

impl GpuMemory {
    /// Creates an empty memory pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-initialized buffer of `bytes` bytes.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        self.buffers.push(Arc::new(vec![0; bytes]));
        BufferId((self.buffers.len() - 1) as u32)
    }

    /// Allocates a buffer holding `n` `f32` values.
    pub fn alloc_f32(&mut self, n: usize) -> BufferId {
        self.alloc(n * 4)
    }

    /// Allocates a buffer holding `n` `i32`/`u32` values.
    pub fn alloc_u32(&mut self, n: usize) -> BufferId {
        self.alloc(n * 4)
    }

    /// Allocates a buffer holding `n` 64-bit values.
    pub fn alloc_u64(&mut self, n: usize) -> BufferId {
        self.alloc(n * 8)
    }

    /// Allocates and fills a buffer from `f32` data.
    pub fn alloc_from_f32(&mut self, data: &[f32]) -> BufferId {
        let id = self.alloc_f32(data.len());
        self.write_f32s(id, data);
        id
    }

    /// Allocates and fills a buffer from `u32` data.
    pub fn alloc_from_u32(&mut self, data: &[u32]) -> BufferId {
        let id = self.alloc_u32(data.len());
        self.write_u32s(id, data);
        id
    }

    /// Allocates and fills a buffer from `u64` data.
    pub fn alloc_from_u64(&mut self, data: &[u64]) -> BufferId {
        let id = self.alloc_u64(data.len());
        let buf = Arc::make_mut(&mut self.buffers[id.0 as usize]);
        for (i, v) in data.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        id
    }

    /// Buffer size in bytes.
    pub fn len_bytes(&self, id: BufferId) -> usize {
        self.buffers[id.0 as usize].len()
    }

    /// Buffer size in bytes by raw index, `None` for an unknown buffer —
    /// the non-faulting lookup the sanitizer's bounds check uses.
    pub(crate) fn try_len_bytes(&self, buffer: u32) -> Option<usize> {
        self.buffers.get(buffer as usize).map(|b| b.len())
    }

    pub(crate) fn load(&self, buffer: u32, offset: u32, width: u32) -> Result<u64, SimError> {
        let buf = self
            .buffers
            .get(buffer as usize)
            .ok_or_else(|| SimError::new(format!("load from unknown buffer {buffer}")))?;
        let off = offset as usize;
        let w = width as usize;
        if off + w > buf.len() {
            return Err(SimError::new(format!(
                "global load out of bounds: buffer {buffer} ({} bytes) at offset {off}+{w}",
                buf.len()
            )));
        }
        let mut word = [0u8; 8];
        word[..w].copy_from_slice(&buf[off..off + w]);
        Ok(u64::from_le_bytes(word))
    }

    pub(crate) fn store(
        &mut self,
        buffer: u32,
        offset: u32,
        width: u32,
        value: u64,
    ) -> Result<(), SimError> {
        let buf = self
            .buffers
            .get_mut(buffer as usize)
            .ok_or_else(|| SimError::new(format!("store to unknown buffer {buffer}")))?;
        let off = offset as usize;
        let w = width as usize;
        if off + w > buf.len() {
            return Err(SimError::new(format!(
                "global store out of bounds: buffer {buffer} ({} bytes) at offset {off}+{w}",
                buf.len()
            )));
        }
        // First store through a shared clone materializes a private copy.
        Arc::make_mut(buf)[off..off + w].copy_from_slice(&value.to_le_bytes()[..w]);
        Ok(())
    }

    /// Writes `f32` values starting at element 0.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is too small.
    pub fn write_f32s(&mut self, id: BufferId, data: &[f32]) {
        let buf = Arc::make_mut(&mut self.buffers[id.0 as usize]);
        for (i, v) in data.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes `u32` values starting at element 0.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is too small.
    pub fn write_u32s(&mut self, id: BufferId, data: &[u32]) {
        let buf = Arc::make_mut(&mut self.buffers[id.0 as usize]);
        for (i, v) in data.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads the `i`-th `f32` element.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn read_f32(&self, id: BufferId, i: usize) -> f32 {
        let b = &self.buffers[id.0 as usize][i * 4..i * 4 + 4];
        f32::from_le_bytes(b.try_into().expect("4 bytes"))
    }

    /// Reads all elements as `f32`.
    pub fn read_f32s(&self, id: BufferId) -> Vec<f32> {
        let buf = &self.buffers[id.0 as usize];
        buf.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }

    /// Reads the `i`-th `u32` element.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn read_u32(&self, id: BufferId, i: usize) -> u32 {
        let b = &self.buffers[id.0 as usize][i * 4..i * 4 + 4];
        u32::from_le_bytes(b.try_into().expect("4 bytes"))
    }

    /// Reads all elements as `u32`.
    pub fn read_u32s(&self, id: BufferId) -> Vec<u32> {
        let buf = &self.buffers[id.0 as usize];
        buf.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }

    /// Reads all elements as `u64`.
    pub fn read_u64s(&self, id: BufferId) -> Vec<u64> {
        let buf = &self.buffers[id.0 as usize];
        buf.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }

    /// Raw bytes of a buffer (for snapshot comparisons in tests).
    pub fn bytes(&self, id: BufferId) -> &[u8] {
        &self.buffers[id.0 as usize]
    }

    /// Whether `self` and `other` still share buffer `id`'s physical bytes
    /// (copy-on-write has not materialized a private copy in either). Test
    /// hook for asserting that cloning a device is cheap.
    pub fn shares_buffer(&self, other: &GpuMemory, id: BufferId) -> bool {
        Arc::ptr_eq(&self.buffers[id.0 as usize], &other.buffers[id.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_round_trip_f32() {
        let mut m = GpuMemory::new();
        let b = m.alloc_from_f32(&[1.0, -2.5, 3.25]);
        assert_eq!(m.read_f32(b, 1), -2.5);
        assert_eq!(m.read_f32s(b), vec![1.0, -2.5, 3.25]);
        assert_eq!(m.len_bytes(b), 12);
    }

    #[test]
    fn typed_load_store() {
        let mut m = GpuMemory::new();
        let b = m.alloc(16);
        m.store(b.0, 4, 4, 0xdead_beef).expect("store");
        assert_eq!(m.load(b.0, 4, 4).expect("load"), 0xdead_beef);
        // 8-byte access
        m.store(b.0, 8, 8, u64::MAX).expect("store");
        assert_eq!(m.load(b.0, 8, 8).expect("load"), u64::MAX);
    }

    #[test]
    fn out_of_bounds_load_errors() {
        let m = GpuMemory::new();
        assert!(m.load(0, 0, 4).is_err());
        let mut m = GpuMemory::new();
        let b = m.alloc(8);
        assert!(m.load(b.0, 5, 4).is_err());
        assert!(m.load(b.0, 4, 4).is_ok());
    }

    #[test]
    fn out_of_bounds_store_errors() {
        let mut m = GpuMemory::new();
        let b = m.alloc(4);
        assert!(m.store(b.0, 1, 4, 0).is_err());
        assert!(m.store(b.0, 0, 4, 0).is_ok());
    }

    #[test]
    fn u32_round_trip() {
        let mut m = GpuMemory::new();
        let b = m.alloc_from_u32(&[7, 8]);
        assert_eq!(m.read_u32(b, 0), 7);
        assert_eq!(m.read_u32s(b), vec![7, 8]);
    }
}
