//! The cycle-driven timing engine: block dispatch, warp scheduling with
//! scoreboarding, memory latency/bandwidth modeling, and metric collection.
//!
//! Each SM hosts resident blocks up to its register / shared-memory / thread
//! / slot limits. Every cycle, each of its warp schedulers picks the first
//! eligible warp in loose-round-robin order and issues one instruction for
//! that warp's min-PC group. Eligibility requires the instruction's operand
//! registers to be ready (per-warp scoreboard) and, for memory instructions,
//! a free MSHR and DRAM bandwidth. Stall slots are classified the way
//! `nvprof` classifies them (memory dependency, execution dependency,
//! synchronization), which is what Figs. 8 and 9 of the paper report.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use thread_ir::ir::Inst;

use crate::config::GpuConfig;
use crate::decode::DecodedKernel;
use crate::error::SimError;
use crate::exec::{BlockExec, ExecOutcome, IssueKind, WarpPeek, WARP_SIZE};
use crate::launch::Launch;
use crate::memory::GpuMemory;
use crate::metrics::{BudgetedRun, RunMetrics, RunResult};
use crate::sanitizer::{sanitize_enabled_by_env, Sanitizer, SanitizerReport};

/// Abort threshold: consecutive cycles with no issue, no retirement, and no
/// dispatch anywhere on the device (a barrier deadlock or engine bug).
const DEADLOCK_CYCLES: u64 = 50_000;

/// Hard ceiling on simulated cycles.
const MAX_CYCLES: u64 = 2_000_000_000;

/// The simulated GPU: a configuration plus device memory.
#[derive(Debug, Clone)]
pub struct Gpu {
    config: GpuConfig,
    memory: GpuMemory,
    /// Race/barrier sanitizer (see [`crate::sanitizer`]); `None` when off.
    sanitizer: Option<Box<Sanitizer>>,
    /// Warp-uniform broadcast fast path in the interpreter (see
    /// [`crate::decode`]); disabled by `HFUSE_SIM_NO_UNIFORM`.
    uniform_exec: bool,
    /// Lane-vectorized interpreter loops (see [`crate::exec`]); disabled by
    /// `HFUSE_SIM_NO_VECTOR` (falls back to the scalar per-lane path).
    vector_exec: bool,
}

impl Gpu {
    /// Creates a GPU with empty device memory. The sanitizer starts enabled
    /// when `HFUSE_SANITIZE=1` is set in the environment.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            config,
            memory: GpuMemory::new(),
            sanitizer: sanitize_enabled_by_env().then(|| Box::new(Sanitizer::new())),
            uniform_exec: !uniform_disabled_by_env(),
            vector_exec: !vector_disabled_by_env(),
        }
    }

    /// Enables or disables the warp-uniform broadcast fast path for
    /// subsequent runs. Results and timing are identical either way; this
    /// is the programmatic escape hatch differential tests use (the env
    /// equivalent is `HFUSE_SIM_NO_UNIFORM=1`).
    pub fn set_uniform_exec(&mut self, on: bool) {
        self.uniform_exec = on;
    }

    /// True when the warp-uniform fast path is active.
    pub fn uniform_exec(&self) -> bool {
        self.uniform_exec
    }

    /// Enables or disables the lane-vectorized interpreter for subsequent
    /// runs. Results and timing are identical either way; this is the
    /// programmatic escape hatch differential tests use (the env
    /// equivalent is `HFUSE_SIM_NO_VECTOR=1`).
    pub fn set_vector_exec(&mut self, on: bool) {
        self.vector_exec = on;
    }

    /// True when the lane-vectorized interpreter is active.
    pub fn vector_exec(&self) -> bool {
        self.vector_exec
    }

    /// Turns on the race/barrier sanitizer for subsequent runs (idempotent;
    /// previously collected reports are kept).
    pub fn enable_sanitizer(&mut self) {
        if self.sanitizer.is_none() {
            self.sanitizer = Some(Box::new(Sanitizer::new()));
        }
    }

    /// True when the sanitizer is active.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Sanitizer findings collected so far (empty when disabled).
    pub fn sanitizer_reports(&self) -> &[SanitizerReport] {
        self.sanitizer.as_ref().map_or(&[], |s| s.reports())
    }

    /// Drains and returns the sanitizer findings collected so far.
    pub fn take_sanitizer_reports(&mut self) -> Vec<SanitizerReport> {
        self.sanitizer
            .as_mut()
            .map_or_else(Vec::new, |s| s.take_reports())
    }

    /// The hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Device memory (read side).
    pub fn memory(&self) -> &GpuMemory {
        &self.memory
    }

    /// Device memory (for allocation and input upload).
    pub fn memory_mut(&mut self) -> &mut GpuMemory {
        &mut self.memory
    }

    /// Runs the launches *functionally*: exact results, no timing. Launches
    /// execute in order; blocks of a launch execute sequentially with
    /// cooperative warp scheduling (so barriers and shuffles behave).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on faults or barrier deadlock.
    pub fn run_functional(&mut self, launches: &[Launch]) -> Result<(), SimError> {
        let seg = self.config.segment_bytes;
        if let Some(s) = self.sanitizer.as_deref_mut() {
            s.begin_run();
        }
        for (li, launch) in launches.iter().enumerate() {
            launch.validate()?;
            let prog = DecodedKernel::new(&launch.kernel, self.uniform_exec, self.vector_exec);
            for b in 0..launch.grid_dim {
                let mut blk = BlockExec::new(launch, li, b);
                loop {
                    let mut progressed = false;
                    for w in 0..blk.num_warps() {
                        while let WarpPeek::Exec { pc, mask } = blk.peek_warp(w) {
                            blk.exec_group(
                                launch,
                                &prog,
                                &mut self.memory,
                                w,
                                pc,
                                mask,
                                seg,
                                self.sanitizer.as_deref_mut(),
                            )?;
                            progressed = true;
                        }
                    }
                    if blk.all_done() {
                        break;
                    }
                    if !progressed {
                        return Err(SimError::new(format!(
                            "barrier deadlock in `{}` block {b}",
                            launch.kernel.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Like [`Self::run`], additionally sampling an issue-utilization /
    /// occupancy timeline every `interval` cycles — the raw material for
    /// visualizing how fusion fills one kernel's stall cycles with the
    /// other's instructions.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_traced(
        &mut self,
        launches: &[Launch],
        interval: u64,
    ) -> Result<(RunResult, Vec<crate::metrics::TraceSample>), SimError> {
        self.run_traced_impl(launches, interval, skip_disabled_by_env())
    }

    /// [`Self::run_traced`] forced through the naive single-step loop (no
    /// idle-cycle fast-forward). Reference path for differential tests.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_traced_naive(
        &mut self,
        launches: &[Launch],
        interval: u64,
    ) -> Result<(RunResult, Vec<crate::metrics::TraceSample>), SimError> {
        self.run_traced_impl(launches, interval, true)
    }

    fn run_traced_impl(
        &mut self,
        launches: &[Launch],
        interval: u64,
        no_skip: bool,
    ) -> Result<(RunResult, Vec<crate::metrics::TraceSample>), SimError> {
        for l in launches {
            l.validate()?;
        }
        let mut engine = Engine::new(&self.config, launches, self.uniform_exec, self.vector_exec);
        engine.no_skip = no_skip;
        engine.trace_interval = interval.max(1);
        if let Some(s) = self.sanitizer.as_deref_mut() {
            s.begin_run();
        }
        let result = engine.run(&mut self.memory, self.sanitizer.as_deref_mut())?;
        let trace = std::mem::take(&mut engine.trace);
        Ok((expect_completed(result), trace))
    }

    /// Runs the launches through the timing model and returns cycle counts
    /// and metrics. Memory effects are identical to [`Self::run_functional`].
    ///
    /// Blocks are dispatched with the *leftover* policy: a launch's blocks
    /// are only scheduled when every earlier launch has no undispatched
    /// blocks (how concurrent streams behave for saturating kernels).
    ///
    /// Idle stretches — windows where every warp is provably blocked until
    /// a known future cycle — are fast-forwarded in one step; the reported
    /// cycle counts and metrics are bit-identical to single-stepping (see
    /// [`Self::run_naive`], and set `HFUSE_SIM_NO_SKIP=1` to force the
    /// single-step loop globally).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on faults, deadlock, unschedulable blocks, or
    /// cycle-limit overrun.
    pub fn run(&mut self, launches: &[Launch]) -> Result<RunResult, SimError> {
        self.run_impl(launches, skip_disabled_by_env(), u64::MAX)
            .map(expect_completed)
    }

    /// [`Self::run`] forced through the naive single-step cycle loop. This
    /// is the reference implementation the fast-forward path must match
    /// bit-for-bit; differential tests compare the two.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_naive(&mut self, launches: &[Launch]) -> Result<RunResult, SimError> {
        self.run_impl(launches, true, u64::MAX)
            .map(expect_completed)
    }

    /// [`Self::run`] with a cycle budget: the run is cut off as soon as the
    /// simulated clock strictly exceeds `budget` with work outstanding,
    /// returning [`BudgetedRun::Aborted`] with the clock at the abort point
    /// (a lower bound on the run's true cycle count, monotone in the
    /// budget). A run that completes within the budget returns exactly what
    /// [`Self::run`] would.
    ///
    /// An aborted run leaves device memory partially mutated — callers that
    /// profile candidates should run on a cloned [`Gpu`] and discard it.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`]; errors that fire before the budget is reached
    /// (faults, deadlock, unschedulable blocks) are reported as errors, not
    /// as aborts.
    pub fn run_with_budget(
        &mut self,
        launches: &[Launch],
        budget: u64,
    ) -> Result<BudgetedRun, SimError> {
        self.run_impl(launches, skip_disabled_by_env(), budget)
    }

    fn run_impl(
        &mut self,
        launches: &[Launch],
        no_skip: bool,
        budget: u64,
    ) -> Result<BudgetedRun, SimError> {
        for l in launches {
            l.validate()?;
            let blocks = crate::occupancy::blocks_per_sm(
                &self.config,
                l.kernel.reg_pressure(),
                l.threads_per_block(),
                l.shared_bytes_per_block(),
            );
            if blocks == 0 {
                return Err(SimError::new(format!(
                    "kernel `{}` cannot be scheduled: a single block exceeds SM resources",
                    l.kernel.name
                )));
            }
        }
        let mut engine = Engine::new(&self.config, launches, self.uniform_exec, self.vector_exec);
        engine.no_skip = no_skip;
        engine.budget = budget;
        if let Some(s) = self.sanitizer.as_deref_mut() {
            s.begin_run();
        }
        engine.run(&mut self.memory, self.sanitizer.as_deref_mut())
    }
}

/// Unwraps a [`BudgetedRun`] that cannot have aborted (budget `u64::MAX`;
/// the engine's cycle ceiling is far below it).
fn expect_completed(r: BudgetedRun) -> RunResult {
    match r {
        BudgetedRun::Completed(res) => res,
        BudgetedRun::Aborted { .. } => unreachable!("unbudgeted run cannot abort"),
    }
}

/// `HFUSE_SIM_NO_SKIP=1` (any value but `0`) disables idle-cycle
/// fast-forward globally — the escape hatch for A/B-ing the two loops.
fn skip_disabled_by_env() -> bool {
    crate::env::sim_no_skip()
}

/// `HFUSE_SIM_NO_UNIFORM=1` (any value but `0`) disables the warp-uniform
/// broadcast fast path globally — the escape hatch for A/B-ing the
/// interpreter paths.
fn uniform_disabled_by_env() -> bool {
    crate::env::sim_no_uniform()
}

/// `HFUSE_SIM_NO_VECTOR=1` (any value but `0`) selects the scalar per-lane
/// interpreter globally — the escape hatch for A/B-ing the vectorized lane
/// loops against the reference path.
fn vector_disabled_by_env() -> bool {
    crate::env::sim_no_vector()
}

/// Per-launch precomputed issue information.
struct LaunchCtx {
    /// The launch's kernel pre-decoded into a flat instruction buffer (the
    /// interpreter's read path; also carries the uniform-eligibility flags).
    prog: DecodedKernel,
    /// Per-instruction count of spilled-register operands.
    spill_counts: Vec<u8>,
    /// Flattened scoreboard-checked registers (sources then destination) of
    /// every instruction, so the per-cycle issue path never allocates.
    operand_regs: Vec<u32>,
    /// Per-instruction `(start, len)` span into [`Self::operand_regs`].
    operand_spans: Vec<(u32, u8)>,
    regs_per_block: u32,
    shared_per_block: u32,
    threads_per_block: u32,
}

impl LaunchCtx {
    fn new(launch: &Launch, uniform_exec: bool, vector_exec: bool) -> Self {
        let k = &launch.kernel;
        let mut spilled = vec![false; k.num_regs as usize];
        for &r in &k.spilled_regs {
            spilled[r as usize] = true;
        }
        let mut srcs = Vec::with_capacity(3);
        let mut operand_regs = Vec::new();
        let mut operand_spans = Vec::with_capacity(k.insts.len());
        let mut spill_counts = Vec::with_capacity(k.insts.len());
        for inst in &k.insts {
            let start = operand_regs.len() as u32;
            srcs.clear();
            inst.srcs_into(&mut srcs);
            let mut n: u8 = srcs.iter().map(|&s| u8::from(spilled[s as usize])).sum();
            if let Some(d) = inst.dst() {
                srcs.push(d);
                n += u8::from(spilled[d as usize]);
            }
            operand_regs.extend_from_slice(&srcs);
            operand_spans.push((start, srcs.len() as u8));
            spill_counts.push(n);
        }
        LaunchCtx {
            prog: DecodedKernel::new(k, uniform_exec, vector_exec),
            spill_counts,
            operand_regs,
            operand_spans,
            regs_per_block: k.reg_pressure() * launch.threads_per_block(),
            shared_per_block: launch.shared_bytes_per_block(),
            threads_per_block: launch.threads_per_block(),
        }
    }

    /// The scoreboard-checked registers (sources then destination) of the
    /// instruction at `pc`.
    fn operands(&self, pc: usize) -> &[u32] {
        let (start, len) = self.operand_spans[pc];
        &self.operand_regs[start as usize..start as usize + usize::from(len)]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallReason {
    Memory,
    Exec,
    Sync,
    Other,
}

struct WarpSlot {
    block_slot: usize,
    warp_idx: usize,
    /// Scoreboard: cycle at which each register's value is ready.
    ready: Vec<u64>,
    /// Whether the pending writer of each register is a memory instruction.
    mem_pending: Vec<bool>,
    /// Cached earliest cycle at which a scoreboard-blocked warp can retry.
    stall_until: u64,
    stall_reason: StallReason,
    peek: WarpPeek,
    done: bool,
}

struct BlockSlot {
    exec: BlockExec,
    launch_idx: usize,
    warp_slots: Vec<usize>,
    live_warps: u32,
}

/// Cached outcome of one scheduler's issue scan. While every warp of a
/// scheduler is blocked, re-walking them each cycle re-derives the same
/// stall verdict; the scan is skipped — replaying the cached verdict — until
/// either the earliest wakeup time its warps reported arrives, or an event
/// on the SM (an issue, a completion, a block dispatch/retirement, a DRAM
/// token sign flip) invalidates the cache.
#[derive(Clone, Copy)]
struct SchedCache {
    valid: bool,
    /// The scan's aggregate stall reason (first blocked warp in rr order).
    reason: StallReason,
    /// Earliest cycle one of the scheduler's warps gains a new option
    /// (`u64::MAX` when all its warps wake via events only).
    wakeup: u64,
    /// Whether the scan left some warp blocked on MSHR capacity or tokens.
    cap_blocked: bool,
}

impl SchedCache {
    fn invalid() -> Self {
        SchedCache {
            valid: false,
            reason: StallReason::Other,
            wakeup: 0,
            cap_blocked: false,
        }
    }
}

struct SmState {
    blocks: Vec<Option<BlockSlot>>,
    warps: Vec<Option<WarpSlot>>,
    /// Warp-slot indices assigned to each scheduler.
    sched_warps: Vec<Vec<usize>>,
    rr: Vec<usize>,
    /// Per-scheduler cached scan verdicts (fast path only).
    sched_cache: Vec<SchedCache>,
    regs_used: u32,
    shared_used: u32,
    threads_used: u32,
    /// Outstanding memory transactions (MSHR occupancy).
    inflight: u32,
    /// (completion cycle, transactions) min-heap.
    completions: BinaryHeap<Reverse<(u64, u32)>>,
    live_warps_total: u32,
    /// Cycle at which the global/local load-store pipe accepts the next
    /// memory warp-instruction (uncoalesced accesses hold it longer).
    global_pipe_free: u64,
    /// Cycle at which the shared-memory pipe accepts the next warp
    /// instruction (bank-conflicted atomics hold it longer).
    shared_pipe_free: u64,
}

impl SmState {
    fn new(cfg: &GpuConfig) -> Self {
        SmState {
            blocks: Vec::new(),
            warps: Vec::new(),
            sched_warps: vec![Vec::new(); cfg.schedulers_per_sm as usize],
            rr: vec![0; cfg.schedulers_per_sm as usize],
            sched_cache: vec![SchedCache::invalid(); cfg.schedulers_per_sm as usize],
            regs_used: 0,
            shared_used: 0,
            threads_used: 0,
            inflight: 0,
            completions: BinaryHeap::new(),
            live_warps_total: 0,
            global_pipe_free: 0,
            shared_pipe_free: 0,
        }
    }

    fn invalidate_sched_cache(&mut self) {
        for c in &mut self.sched_cache {
            c.valid = false;
        }
    }

    fn resident_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| b.is_some()).count() as u32
    }

    fn is_active(&self) -> bool {
        self.blocks.iter().any(|b| b.is_some())
    }

    fn fits(&self, cfg: &GpuConfig, ctx: &LaunchCtx) -> bool {
        self.resident_blocks() < cfg.max_blocks_per_sm
            && self.regs_used + ctx.regs_per_block <= cfg.regs_per_sm
            && self.shared_used + ctx.shared_per_block <= cfg.shared_per_sm
            && self.threads_used + ctx.threads_per_block <= cfg.max_threads_per_sm
    }
}

struct Engine<'a> {
    cfg: &'a GpuConfig,
    launches: &'a [Launch],
    ctxs: Vec<LaunchCtx>,
    sms: Vec<SmState>,
    /// Next undispatched block per launch.
    next_block: Vec<u32>,
    blocks_remaining: u64,
    dram_tokens: i64,
    metrics: RunMetrics,
    launch_finish: Vec<u64>,
    idle_cycles: u64,
    /// Force the naive single-step loop (no idle-cycle fast-forward).
    no_skip: bool,
    /// Cycle budget: the run aborts once the clock strictly exceeds it
    /// with work outstanding (`u64::MAX` = unbudgeted).
    budget: u64,
    /// Earliest future cycle at which any warp blocked during the current
    /// sweep can change state (scoreboard `stall_until`, memory-pipe free
    /// time). Collected *during* the issue sweep — which already visits
    /// every blocked warp — so the fast-forward needs no second scan.
    sweep_wakeup: u64,
    /// Whether the current sweep left some warp blocked purely on MSHR
    /// capacity or DRAM tokens. Only then can a transaction completion or a
    /// token refill change the sweep's outcome; otherwise an idle window
    /// may span completions and replay their retirements in bulk.
    sweep_cap_blocked: bool,
    /// Scratch for the scheduler scan in flight: min wakeup time among the
    /// warps visited so far (feeds the scheduler's [`SchedCache`]).
    scan_wakeup: u64,
    /// Scratch: whether the scan in flight hit an MSHR/token-blocked warp.
    scan_cap_blocked: bool,
    /// Sampling interval for [`Gpu::run_traced`] (0 = no tracing).
    trace_interval: u64,
    trace: Vec<crate::metrics::TraceSample>,
    window_issued: u64,
    window_slots: u64,
    window_warp_cycles: u64,
}

/// The issue sweep of one cycle, summarized so an idle stretch can be
/// replayed in bulk: while no warp issues, no block dispatches or retires,
/// and no transaction completes, every subsequent sweep is cycle-for-cycle
/// identical to the one recorded here.
#[derive(Default)]
struct SweepStats {
    active_sms: u64,
    active_warps: u64,
    slots: u64,
    stall_mem: u64,
    stall_exec: u64,
    stall_sync: u64,
    stall_other: u64,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a GpuConfig,
        launches: &'a [Launch],
        uniform_exec: bool,
        vector_exec: bool,
    ) -> Self {
        Engine {
            cfg,
            launches,
            ctxs: launches
                .iter()
                .map(|l| LaunchCtx::new(l, uniform_exec, vector_exec))
                .collect(),
            sms: (0..cfg.num_sms).map(|_| SmState::new(cfg)).collect(),
            next_block: vec![0; launches.len()],
            blocks_remaining: launches.iter().map(|l| u64::from(l.grid_dim)).sum(),
            dram_tokens: 0,
            metrics: RunMetrics {
                max_warps_per_sm: cfg.max_warps_per_sm(),
                ..Default::default()
            },
            launch_finish: vec![0; launches.len()],
            idle_cycles: 0,
            no_skip: false,
            budget: u64::MAX,
            sweep_wakeup: u64::MAX,
            sweep_cap_blocked: false,
            scan_wakeup: u64::MAX,
            scan_cap_blocked: false,
            trace_interval: 0,
            trace: Vec::new(),
            window_issued: 0,
            window_slots: 0,
            window_warp_cycles: 0,
        }
    }

    fn run(
        &mut self,
        memory: &mut GpuMemory,
        mut san: Option<&mut Sanitizer>,
    ) -> Result<BudgetedRun, SimError> {
        let mut cycle: u64 = 0;
        let token_burst = i64::from(self.cfg.dram_transactions_per_cycle) * 4;
        loop {
            // Refill DRAM bandwidth tokens. Starved-to-available flips can
            // unblock token-gated warps anywhere on the device.
            let was_starved = self.dram_tokens <= 0;
            self.dram_tokens = (self.dram_tokens + i64::from(self.cfg.dram_transactions_per_cycle))
                .min(token_burst);
            if was_starved && self.dram_tokens > 0 {
                for sm in &mut self.sms {
                    sm.invalidate_sched_cache();
                }
            }

            let mut progress = false;

            // Retire completed memory transactions.
            for sm in &mut self.sms {
                let mut popped = false;
                while let Some(&Reverse((t, n))) = sm.completions.peek() {
                    if t > cycle {
                        break;
                    }
                    sm.completions.pop();
                    sm.inflight = sm.inflight.saturating_sub(n);
                    popped = true;
                }
                if popped {
                    // Freed MSHRs can unblock capacity-gated warps here.
                    sm.invalidate_sched_cache();
                    progress = true;
                }
            }

            // Dispatch blocks (leftover policy, one block per SM per cycle).
            progress |= self.dispatch_blocks();

            // Issue. The sweep is summarized in `sweep` so that an idle
            // stretch can later be replayed in bulk (fast-forward below).
            let mut sweep = SweepStats::default();
            self.sweep_wakeup = u64::MAX;
            self.sweep_cap_blocked = false;
            for sm_idx in 0..self.sms.len() {
                if !self.sms[sm_idx].is_active() {
                    continue;
                }
                sweep.active_sms += 1;
                sweep.active_warps += u64::from(self.sms[sm_idx].live_warps_total);
                for sched in 0..self.cfg.schedulers_per_sm as usize {
                    sweep.slots += 1;
                    // A scheduler whose previous scan found every warp
                    // blocked replays its cached verdict until the earliest
                    // wakeup its warps reported, or until an event on this
                    // SM invalidates the cache. The naive loop never uses
                    // the cache — it is the reference the cache must match.
                    let cached = self.sms[sm_idx].sched_cache[sched];
                    let reason = if !self.no_skip && cached.valid && cached.wakeup > cycle {
                        self.sweep_wakeup = self.sweep_wakeup.min(cached.wakeup);
                        self.sweep_cap_blocked |= cached.cap_blocked;
                        cached.reason
                    } else {
                        self.scan_wakeup = u64::MAX;
                        self.scan_cap_blocked = false;
                        match self.issue_one(memory, san.as_deref_mut(), sm_idx, sched, cycle)? {
                            IssueResult::Issued => {
                                self.metrics.issued_slots += 1;
                                progress = true;
                                // The issue may have freed a barrier, moved
                                // a pipe, or consumed tokens: every verdict
                                // on this SM is stale.
                                self.sms[sm_idx].invalidate_sched_cache();
                                continue;
                            }
                            IssueResult::Stalled(reason) => {
                                if !self.no_skip {
                                    self.sms[sm_idx].sched_cache[sched] = SchedCache {
                                        valid: true,
                                        reason,
                                        wakeup: self.scan_wakeup,
                                        cap_blocked: self.scan_cap_blocked,
                                    };
                                }
                                self.sweep_wakeup = self.sweep_wakeup.min(self.scan_wakeup);
                                self.sweep_cap_blocked |= self.scan_cap_blocked;
                                reason
                            }
                        }
                    };
                    match reason {
                        StallReason::Memory => sweep.stall_mem += 1,
                        StallReason::Exec => sweep.stall_exec += 1,
                        StallReason::Sync => sweep.stall_sync += 1,
                        StallReason::Other => sweep.stall_other += 1,
                    }
                }
            }
            self.metrics.active_sm_cycles += sweep.active_sms;
            self.metrics.active_warp_cycles += sweep.active_warps;
            self.metrics.total_slots += sweep.slots;
            self.metrics.stall_mem += sweep.stall_mem;
            self.metrics.stall_exec += sweep.stall_exec;
            self.metrics.stall_sync += sweep.stall_sync;
            self.metrics.stall_other += sweep.stall_other;

            // Timeline sampling: emit a window sample from the metric
            // deltas since the previous sample.
            if self.trace_interval > 0 && (cycle + 1).is_multiple_of(self.trace_interval) {
                let issued = self.metrics.issued_slots - self.window_issued;
                let slots = self.metrics.total_slots - self.window_slots;
                let warps = self.metrics.active_warp_cycles - self.window_warp_cycles;
                self.window_issued = self.metrics.issued_slots;
                self.window_slots = self.metrics.total_slots;
                self.window_warp_cycles = self.metrics.active_warp_cycles;
                self.trace.push(crate::metrics::TraceSample {
                    cycle: cycle + 1,
                    issue_util: if slots == 0 {
                        0.0
                    } else {
                        100.0 * issued as f64 / slots as f64
                    },
                    avg_warps: warps as f64
                        / (self.trace_interval as f64 * f64::from(self.cfg.num_sms)),
                });
            }

            // Retire finished blocks.
            progress |= self.retire_blocks(cycle);

            if self.blocks_remaining == 0 && self.sms.iter().all(|s| !s.is_active()) {
                cycle += 1;
                break;
            }

            self.idle_cycles = if progress { 0 } else { self.idle_cycles + 1 };
            if self.idle_cycles > DEADLOCK_CYCLES {
                return Err(SimError::new(
                    "device made no progress (barrier deadlock between thread groups?)",
                ));
            }
            cycle += 1;
            if cycle > MAX_CYCLES {
                return Err(SimError::new("cycle limit exceeded"));
            }

            // Event-driven fast-forward. A cycle with no issue, no
            // dispatch, and no retirement leaves the device in a state where
            // every following cycle repeats the exact same sweep until the
            // next event that can change the sweep's outcome: a
            // scoreboard-stalled warp reaching its `stall_until`, a memory
            // pipe freeing, or a trace-sample boundary. Transaction
            // completions only decrement `inflight`, which the sweep ignores
            // unless some warp was held back by MSHR capacity or DRAM
            // tokens (`sweep_cap_blocked`) — so a window may span them, as
            // long as the in-window retirements (and the idle-counter resets
            // they cause in the naive loop) are replayed in bulk. Jump
            // straight to the event, replaying the recorded sweep so every
            // metric stays bit-identical to the single-step loop
            // (`HFUSE_SIM_NO_SKIP=1` / `run_naive`).
            if !progress && !self.no_skip {
                // `cycle` is already the next cycle to simulate; cycles in
                // `cycle..next_event` would all repeat the recorded sweep.
                let consider = |t: u64, next: &mut Option<u64>| {
                    *next = Some(next.map_or(t, |n: u64| n.min(t)));
                };
                let mut next_event: Option<u64> = None;
                if self.sweep_wakeup != u64::MAX {
                    consider(self.sweep_wakeup, &mut next_event);
                }
                if self.trace_interval > 0 {
                    // Next cycle that emits a sample; its sweep must run for
                    // real so the sample is pushed at the right moment.
                    let m = (cycle + 1) % self.trace_interval;
                    consider(
                        cycle + (self.trace_interval - m) % self.trace_interval,
                        &mut next_event,
                    );
                }
                let rate = i64::from(self.cfg.dram_transactions_per_cycle);
                let mut completion_event: Option<u64> = None;
                for sm in &self.sms {
                    if let Some(&Reverse((t, _))) = sm.completions.peek() {
                        consider(t, &mut completion_event);
                    }
                }
                let token_event = if self.dram_tokens <= 0 && rate > 0 {
                    // First cycle whose refill makes tokens positive again.
                    let j = (1 - self.dram_tokens + rate - 1) / rate;
                    Some(cycle - 1 + j as u64)
                } else {
                    None
                };
                if self.sweep_cap_blocked {
                    // A capacity-starved warp wakes the moment a completion
                    // frees an MSHR or the token bucket refills.
                    if let Some(t) = completion_event {
                        consider(t, &mut next_event);
                    }
                    if let Some(t) = token_event {
                        consider(t, &mut next_event);
                    }
                }

                let skip = match next_event {
                    Some(t) => t - cycle,
                    None => u64::MAX,
                };
                // Spanning completions silently is only sound when the naive
                // loop could not abort mid-window: completions reset its
                // idle counter, so without them `idle + skip` bounds every
                // idle run, and the landing cycle must stay inside the
                // cycle budget.
                let spans_ok = !self.sweep_cap_blocked
                    && self.idle_cycles.saturating_add(skip) <= DEADLOCK_CYCLES
                    && skip < MAX_CYCLES - cycle + 1;
                if spans_ok {
                    if skip > 0 {
                        let end = cycle + skip;
                        // Bulk-retire the completions the naive loop would
                        // have drained one cycle at a time; the last one is
                        // the naive loop's most recent progress cycle.
                        let mut last_progress: Option<u64> = None;
                        for sm in &mut self.sms {
                            while let Some(&Reverse((t, n))) = sm.completions.peek() {
                                if t >= end {
                                    break;
                                }
                                sm.completions.pop();
                                sm.inflight = sm.inflight.saturating_sub(n);
                                last_progress = Some(last_progress.map_or(t, |x| x.max(t)));
                            }
                        }
                        self.dram_tokens = (self.dram_tokens + skip as i64 * rate).min(token_burst);
                        self.metrics.active_sm_cycles += skip * sweep.active_sms;
                        self.metrics.active_warp_cycles += skip * sweep.active_warps;
                        self.metrics.total_slots += skip * sweep.slots;
                        self.metrics.stall_mem += skip * sweep.stall_mem;
                        self.metrics.stall_exec += skip * sweep.stall_exec;
                        self.metrics.stall_sync += skip * sweep.stall_sync;
                        self.metrics.stall_other += skip * sweep.stall_other;
                        self.idle_cycles = match last_progress {
                            Some(t) => end - 1 - t,
                            None => self.idle_cycles + skip,
                        };
                        cycle = end;
                    }
                } else {
                    // Conservative window: completions and token refills end
                    // it, so its interior truly has no progress and the
                    // naive loop's abort conditions translate directly.
                    if let Some(t) = completion_event {
                        consider(t, &mut next_event);
                    }
                    if let Some(t) = token_event {
                        consider(t, &mut next_event);
                    }
                    let skip = match next_event {
                        Some(t) => t - cycle,
                        None => u64::MAX,
                    };
                    let to_deadlock = DEADLOCK_CYCLES - self.idle_cycles + 1;
                    let to_limit = MAX_CYCLES - cycle + 1;
                    if to_deadlock.min(to_limit) <= skip {
                        return Err(if to_deadlock <= to_limit {
                            SimError::new(
                                "device made no progress (barrier deadlock between thread groups?)",
                            )
                        } else {
                            SimError::new("cycle limit exceeded")
                        });
                    }
                    if skip > 0 {
                        self.dram_tokens = (self.dram_tokens + skip as i64 * rate).min(token_burst);
                        self.metrics.active_sm_cycles += skip * sweep.active_sms;
                        self.metrics.active_warp_cycles += skip * sweep.active_warps;
                        self.metrics.total_slots += skip * sweep.slots;
                        self.metrics.stall_mem += skip * sweep.stall_mem;
                        self.metrics.stall_exec += skip * sweep.stall_exec;
                        self.metrics.stall_sync += skip * sweep.stall_sync;
                        self.metrics.stall_other += skip * sweep.stall_other;
                        self.idle_cycles += skip;
                        cycle += skip;
                    }
                }
            }

            // Cycle-budget early-abort. Checked at the very bottom of the
            // iteration so it covers both the single-step `cycle += 1` and
            // fast-forward jumps, and only fires while work remains (a run
            // that completes breaks out above before this is reached). The
            // clock sequence observed here is budget-independent, so the
            // reported `cycles_so_far` — a lower bound on the run's true
            // cycle count — is monotone in the budget.
            if cycle > self.budget {
                return Ok(BudgetedRun::Aborted {
                    cycles_so_far: cycle,
                });
            }
        }
        self.metrics.cycles = cycle;
        Ok(BudgetedRun::Completed(RunResult {
            total_cycles: cycle,
            metrics: self.metrics,
            launch_finish: std::mem::take(&mut self.launch_finish),
        }))
    }

    /// Picks the launch whose blocks may dispatch (leftover policy) and
    /// places at most one block per SM.
    fn dispatch_blocks(&mut self) -> bool {
        let mut dispatched = false;
        for sm_idx in 0..self.sms.len() {
            // First launch that still has undispatched blocks.
            let Some(li) = (0..self.launches.len())
                .find(|&li| self.next_block[li] < self.launches[li].grid_dim)
            else {
                break;
            };
            let ctx = &self.ctxs[li];
            if !self.sms[sm_idx].fits(self.cfg, ctx) {
                continue;
            }
            let block_idx = self.next_block[li];
            self.next_block[li] += 1;
            self.place_block(sm_idx, li, block_idx);
            dispatched = true;
        }
        dispatched
    }

    fn place_block(&mut self, sm_idx: usize, launch_idx: usize, block_idx: u32) {
        let launch = &self.launches[launch_idx];
        let ctx = &self.ctxs[launch_idx];
        let exec = BlockExec::new(launch, launch_idx, block_idx);
        let num_warps = exec.num_warps();
        let sm = &mut self.sms[sm_idx];
        sm.regs_used += ctx.regs_per_block;
        sm.shared_used += ctx.shared_per_block;
        sm.threads_used += ctx.threads_per_block;

        let block_slot = match sm.blocks.iter().position(|b| b.is_none()) {
            Some(i) => i,
            None => {
                sm.blocks.push(None);
                sm.blocks.len() - 1
            }
        };

        let mut warp_slots = Vec::with_capacity(num_warps);
        for w in 0..num_warps {
            let slot = WarpSlot {
                block_slot,
                warp_idx: w,
                ready: vec![0; launch.kernel.num_regs as usize],
                mem_pending: vec![false; launch.kernel.num_regs as usize],
                stall_until: 0,
                stall_reason: StallReason::Other,
                peek: exec.peek_warp(w),
                done: false,
            };
            let ws = match sm.warps.iter().position(|x| x.is_none()) {
                Some(i) => {
                    sm.warps[i] = Some(slot);
                    i
                }
                None => {
                    sm.warps.push(Some(slot));
                    sm.warps.len() - 1
                }
            };
            sm.sched_warps[ws % self.cfg.schedulers_per_sm as usize].push(ws);
            warp_slots.push(ws);
        }
        sm.live_warps_total += num_warps as u32;
        sm.blocks[block_slot] = Some(BlockSlot {
            exec,
            launch_idx,
            warp_slots,
            live_warps: num_warps as u32,
        });
        sm.invalidate_sched_cache();
    }

    fn retire_blocks(&mut self, cycle: u64) -> bool {
        let mut retired = false;
        for sm in &mut self.sms {
            for bi in 0..sm.blocks.len() {
                let done = matches!(&sm.blocks[bi], Some(b) if b.live_warps == 0);
                if !done {
                    continue;
                }
                let block = sm.blocks[bi].take().expect("checked Some");
                let ctx = &self.ctxs[block.launch_idx];
                sm.regs_used -= ctx.regs_per_block;
                sm.shared_used -= ctx.shared_per_block;
                sm.threads_used -= ctx.threads_per_block;
                for ws in &block.warp_slots {
                    sm.warps[*ws] = None;
                    for sched in &mut sm.sched_warps {
                        sched.retain(|x| x != ws);
                    }
                }
                self.launch_finish[block.launch_idx] =
                    self.launch_finish[block.launch_idx].max(cycle);
                self.blocks_remaining -= 1;
                sm.invalidate_sched_cache();
                retired = true;
            }
        }
        retired
    }

    /// Attempts to issue one instruction on scheduler `sched` of SM
    /// `sm_idx`.
    fn issue_one(
        &mut self,
        memory: &mut GpuMemory,
        mut san: Option<&mut Sanitizer>,
        sm_idx: usize,
        sched: usize,
        now: u64,
    ) -> Result<IssueResult, SimError> {
        let n_warps = self.sms[sm_idx].sched_warps[sched].len();
        if n_warps == 0 {
            return Ok(IssueResult::Stalled(StallReason::Other));
        }
        let mut first_block_reason: Option<StallReason> = None;
        let start = self.sms[sm_idx].rr[sched] % n_warps;
        for k in 0..n_warps {
            let pos = (start + k) % n_warps;
            let ws = self.sms[sm_idx].sched_warps[sched][pos];
            let reason = match self.try_issue_warp(memory, san.as_deref_mut(), sm_idx, ws, now)? {
                None => {
                    // Issued: advance round-robin past this warp.
                    let sm = &mut self.sms[sm_idx];
                    sm.rr[sched] = (pos + 1) % n_warps.max(1);
                    return Ok(IssueResult::Issued);
                }
                Some(r) => r,
            };
            if let Some(r) = reason {
                first_block_reason.get_or_insert(r);
            }
        }
        Ok(IssueResult::Stalled(
            first_block_reason.unwrap_or(StallReason::Other),
        ))
    }

    /// Tries to issue the given warp. Returns:
    /// * `Ok(None)` — issued,
    /// * `Ok(Some(Some(reason)))` — live but blocked for `reason`,
    /// * `Ok(Some(None))` — not a stall candidate (warp done).
    #[allow(clippy::type_complexity)]
    fn try_issue_warp(
        &mut self,
        memory: &mut GpuMemory,
        san: Option<&mut Sanitizer>,
        sm_idx: usize,
        ws: usize,
        now: u64,
    ) -> Result<Option<Option<StallReason>>, SimError> {
        let sm = &mut self.sms[sm_idx];
        let Some(warp) = sm.warps[ws].as_mut() else {
            return Ok(Some(None));
        };
        if warp.done {
            return Ok(Some(None));
        }
        let (pc, mask) = match warp.peek {
            WarpPeek::Done => return Ok(Some(None)),
            WarpPeek::Blocked => return Ok(Some(Some(StallReason::Sync))),
            WarpPeek::Exec { pc, mask } => (pc, mask),
        };
        if warp.stall_until > now {
            self.scan_wakeup = self.scan_wakeup.min(warp.stall_until);
            return Ok(Some(Some(warp.stall_reason)));
        }
        let block_slot = warp.block_slot;
        let launch_idx = sm.blocks[block_slot]
            .as_ref()
            .expect("warp's block resident")
            .launch_idx;
        let launch = &self.launches[launch_idx];
        let ctx = &self.ctxs[launch_idx];
        let inst = ctx.prog.insts[pc].inst;
        let spill_cnt = ctx.spill_counts[pc];

        // Scoreboard: operand readiness (RAW) and destination (WAW), via
        // the launch's precomputed operand list (no per-attempt allocation).
        let warp = sm.warps[ws].as_mut().expect("warp checked Some");
        let mut need: u64 = 0;
        let mut blocked_by_mem = false;
        for &r in ctx.operands(pc) {
            let t = warp.ready[r as usize];
            if t > now {
                need = need.max(t);
                blocked_by_mem |= warp.mem_pending[r as usize];
            }
        }
        if need > now {
            warp.stall_until = need;
            warp.stall_reason = if blocked_by_mem {
                StallReason::Memory
            } else {
                StallReason::Exec
            };
            self.scan_wakeup = self.scan_wakeup.min(need);
            return Ok(Some(Some(warp.stall_reason)));
        }

        // Structural hazards: the two memory pipelines.
        let warp_idx = sm.warps[ws].as_ref().expect("warp checked Some").warp_idx;
        let space = sm.blocks[block_slot]
            .as_ref()
            .expect("warp's block resident")
            .exec
            .peek_space(warp_idx, mask, pc, &ctx.prog);
        let uses_global_pipe = matches!(
            space,
            Some(thread_ir::Space::Global | thread_ir::Space::Local)
        ) || spill_cnt > 0;
        let uses_shared_pipe = space == Some(thread_ir::Space::Shared);
        if uses_global_pipe {
            // A busy pipe is a wakeup time of its own (and gates the warp
            // regardless of capacity). A warp held back *only* by MSHRs or
            // tokens wakes on a completion / token refill — flag it so the
            // fast-forward treats those as events.
            if sm.global_pipe_free > now {
                self.scan_wakeup = self.scan_wakeup.min(sm.global_pipe_free);
                return Ok(Some(Some(StallReason::Memory)));
            }
            if sm.inflight >= self.cfg.mshrs_per_sm || self.dram_tokens <= 0 {
                self.scan_cap_blocked = true;
                return Ok(Some(Some(StallReason::Memory)));
            }
        }
        if uses_shared_pipe && sm.shared_pipe_free > now {
            // Shared-pipe serialization shows up as pipe-busy, not memory
            // dependency, matching nvprof's classification.
            self.scan_wakeup = self.scan_wakeup.min(sm.shared_pipe_free);
            return Ok(Some(Some(StallReason::Exec)));
        }

        // Issue: execute functionally, then account timing.
        let block = sm.blocks[block_slot]
            .as_mut()
            .expect("warp's block resident");
        let outcome = block.exec.exec_group(
            launch,
            &ctx.prog,
            memory,
            warp_idx,
            pc,
            mask,
            self.cfg.segment_bytes,
            san,
        )?;
        self.metrics.thread_insts += u64::from(mask.count_ones());
        self.account_issue(sm_idx, ws, &inst, outcome, spill_cnt, now);
        Ok(None)
    }

    /// Extra memory latency from queueing: as the SM's outstanding
    /// transactions approach the MSHR capacity, the effective round-trip
    /// grows (DRAM contention).
    fn queue_penalty(&self, sm_idx: usize) -> u32 {
        let sm = &self.sms[sm_idx];
        let lat = self.cfg.latencies.global_mem as u64;
        (lat * u64::from(sm.inflight) / u64::from(self.cfg.mshrs_per_sm.max(1))) as u32
    }

    /// Post-issue timing bookkeeping: latency, scoreboard update, memory
    /// pipeline occupancy, cache refreshes, retirement bookkeeping.
    fn account_issue(
        &mut self,
        sm_idx: usize,
        ws: usize,
        inst: &Inst,
        outcome: ExecOutcome,
        spill_cnt: u8,
        now: u64,
    ) {
        let lat = &self.cfg.latencies;
        self.metrics.class_issues[outcome.kind.index()] += 1;
        let extra_tx = u32::from(spill_cnt);
        let (mut latency, is_mem_kind) = match outcome.kind {
            IssueKind::Alu => (lat.alu, false),
            IssueKind::Div => (lat.div, false),
            IssueKind::Special => (lat.special, false),
            IssueKind::Shuffle => (lat.shuffle, false),
            IssueKind::SharedMem => (lat.shared_mem, false),
            IssueKind::SharedAtomic => (
                lat.shared_atomic + outcome.conflict_extra * lat.shared_atomic_retry,
                false,
            ),
            IssueKind::GlobalMem => (
                lat.global_mem
                    + outcome.transactions.saturating_sub(1) * lat.uncoalesced_extra
                    + self.queue_penalty(sm_idx),
                true,
            ),
            IssueKind::GlobalAtomic => (
                lat.global_atomic
                    + (outcome.transactions.saturating_sub(1) + outcome.conflict_extra)
                        * lat.uncoalesced_extra
                    + self.queue_penalty(sm_idx),
                true,
            ),
            IssueKind::LocalMem => (lat.local_mem, true),
            IssueKind::Control => (lat.alu, false),
            IssueKind::Barrier => (lat.alu, false),
        };
        latency += u32::from(spill_cnt) * lat.spill_access;

        let total_tx = outcome.transactions + extra_tx;
        let touches_dram = is_mem_kind || spill_cnt > 0;
        let sm = &mut self.sms[sm_idx];
        // Pipeline occupancy: the issuing warp holds the pipe long enough
        // to generate its transactions / resolve its bank conflicts.
        match outcome.kind {
            IssueKind::SharedMem => sm.shared_pipe_free = now + 1,
            IssueKind::SharedAtomic => {
                sm.shared_pipe_free = now
                    + 1
                    + u64::from(outcome.conflict_extra) * u64::from(lat.shared_atomic_retry);
            }
            IssueKind::GlobalMem | IssueKind::GlobalAtomic | IssueKind::LocalMem => {
                let gen_cycles = u64::from(total_tx.max(1)).div_ceil(4);
                sm.global_pipe_free = now + gen_cycles.max(1);
            }
            _ if spill_cnt > 0 => sm.global_pipe_free = now + 1,
            _ => {}
        }
        if touches_dram {
            let tx = total_tx.max(1);
            sm.inflight += tx;
            sm.completions.push(Reverse((now + u64::from(latency), tx)));
            self.dram_tokens -= i64::from(tx);
            self.metrics.mem_transactions += u64::from(tx);
        }

        // Scoreboard update.
        {
            let warp = sm.warps[ws].as_mut().expect("issuing warp exists");
            if let Some(d) = inst.dst() {
                warp.ready[d as usize] = now + u64::from(latency);
                warp.mem_pending[d as usize] = touches_dram;
            }
            warp.stall_until = now + 1;
            warp.stall_reason = StallReason::Other;
        }

        // Refresh cached peeks: barriers may wake other warps of the block.
        let block_slot = sm.warps[ws]
            .as_ref()
            .expect("issuing warp exists")
            .block_slot;
        if matches!(outcome.kind, IssueKind::Barrier) {
            let slots = sm.blocks[block_slot]
                .as_ref()
                .expect("block resident")
                .warp_slots
                .clone();
            for other in slots {
                Self::refresh_warp(sm, block_slot, other);
            }
        } else {
            Self::refresh_warp(sm, block_slot, ws);
        }
    }

    fn refresh_warp(sm: &mut SmState, block_slot: usize, ws: usize) {
        let block = sm.blocks[block_slot].as_ref().expect("block resident");
        let warp_idx = match sm.warps[ws].as_ref() {
            Some(w) => w.warp_idx,
            None => return,
        };
        let peek = block.exec.peek_warp(warp_idx);
        let warp = sm.warps[ws].as_mut().expect("checked Some");
        let was_done = warp.done;
        warp.peek = peek;
        if peek == WarpPeek::Done && !was_done {
            warp.done = true;
            sm.live_warps_total -= 1;
            let block = sm.blocks[block_slot].as_mut().expect("block resident");
            block.live_warps -= 1;
        }
    }
}

enum IssueResult {
    Issued,
    Stalled(StallReason),
}

/// Returns the number of warps a block of `threads` threads occupies.
pub fn warps_for_threads(threads: u32) -> u32 {
    threads.div_ceil(WARP_SIZE as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::ParamValue;
    use cuda_frontend::parse_kernel;
    use thread_ir::lower_kernel;

    fn compile(src: &str) -> thread_ir::KernelIr {
        lower_kernel(&parse_kernel(src).expect("parse")).expect("lower")
    }

    fn tiny_gpu() -> Gpu {
        Gpu::new(GpuConfig::test_tiny())
    }

    #[test]
    fn fill_kernel_functional_and_timed_agree() {
        let ir = compile(
            "__global__ void fill(float* out, int n) {\
               int i = blockIdx.x * blockDim.x + threadIdx.x;\
               if (i < n) { out[i] = i * 2.0f; }\
             }",
        );
        // functional
        let mut gpu = tiny_gpu();
        let buf = gpu.memory_mut().alloc_f32(100);
        let launch = Launch::new(ir.clone(), 4, (32, 1, 1))
            .arg(ParamValue::Ptr(buf))
            .arg(ParamValue::I32(100));
        gpu.run_functional(std::slice::from_ref(&launch))
            .expect("functional run");
        let func = gpu.memory().read_f32s(buf);

        // timed
        let mut gpu = tiny_gpu();
        let buf2 = gpu.memory_mut().alloc_f32(100);
        let launch = Launch::new(ir, 4, (32, 1, 1))
            .arg(ParamValue::Ptr(buf2))
            .arg(ParamValue::I32(100));
        let res = gpu.run(&[launch]).expect("timed run");
        assert!(res.total_cycles > 0);
        assert_eq!(gpu.memory().read_f32s(buf2), func);
        assert_eq!(func[99], 198.0);
        assert_eq!(func[3], 6.0);
    }

    #[test]
    fn reduction_with_syncthreads() {
        let ir = compile(
            "__global__ void reduce(float* out, float* in) {\
               __shared__ float s[64];\
               int t = threadIdx.x;\
               s[t] = in[blockIdx.x * 64 + t];\
               __syncthreads();\
               for (int stride = 32; stride > 0; stride = stride / 2) {\
                 if (t < stride) { s[t] += s[t + stride]; }\
                 __syncthreads();\
               }\
               if (t == 0) { out[blockIdx.x] = s[0]; }\
             }",
        );
        let mut gpu = tiny_gpu();
        let input: Vec<f32> = (0..128).map(|i| i as f32).collect();
        let in_buf = gpu.memory_mut().alloc_from_f32(&input);
        let out_buf = gpu.memory_mut().alloc_f32(2);
        let launch = Launch::new(ir, 2, (64, 1, 1))
            .arg(ParamValue::Ptr(out_buf))
            .arg(ParamValue::Ptr(in_buf));
        gpu.run(&[launch]).expect("run");
        let out = gpu.memory().read_f32s(out_buf);
        assert_eq!(out[0], (0..64).sum::<i32>() as f32);
        assert_eq!(out[1], (64..128).sum::<i32>() as f32);
    }

    #[test]
    fn partial_barrier_synchronizes_subset() {
        // 64 threads; the first 32 use barrier 1 to hand a value through
        // shared memory; the other 32 spin independently.
        let ir = compile(
            "__global__ void k(int* out) {\
               __shared__ int s[1];\
               int t = threadIdx.x;\
               if (t < 32) {\
                 if (t == 0) { s[0] = 42; }\
                 asm(\"bar.sync 1, 32;\");\
                 out[t] = s[0];\
               } else {\
                 out[t] = t;\
               }\
             }",
        );
        let mut gpu = tiny_gpu();
        let out = gpu.memory_mut().alloc_u32(64);
        let launch = Launch::new(ir, 1, (64, 1, 1)).arg(ParamValue::Ptr(out));
        gpu.run(&[launch]).expect("run");
        let v = gpu.memory().read_u32s(out);
        assert!(v[..32].iter().all(|&x| x == 42), "{v:?}");
        assert_eq!(v[40], 40);
    }

    #[test]
    fn divergent_branches_converge() {
        let ir = compile(
            "__global__ void k(int* out) {\
               int t = threadIdx.x;\
               int v;\
               if (t % 2 == 0) { v = t * 10; } else { v = t; }\
               out[t] = v + 1;\
             }",
        );
        let mut gpu = tiny_gpu();
        let out = gpu.memory_mut().alloc_u32(32);
        let launch = Launch::new(ir, 1, (32, 1, 1)).arg(ParamValue::Ptr(out));
        gpu.run(&[launch]).expect("run");
        let v = gpu.memory().read_u32s(out);
        assert_eq!(v[2], 21);
        assert_eq!(v[3], 4);
    }

    #[test]
    fn atomics_accumulate_across_blocks() {
        let ir = compile("__global__ void k(int* counter) { atomicAdd(&counter[0], 1); }");
        let mut gpu = tiny_gpu();
        let c = gpu.memory_mut().alloc_u32(1);
        let launch = Launch::new(ir, 4, (64, 1, 1)).arg(ParamValue::Ptr(c));
        gpu.run(&[launch]).expect("run");
        assert_eq!(gpu.memory().read_u32(c, 0), 256);
    }

    #[test]
    fn warp_shuffle_reduction() {
        let ir = compile(
            "__global__ void k(int* out) {\
               int v = threadIdx.x;\
               for (int i = 16; i > 0; i = i / 2) {\
                 v += __shfl_xor_sync(0xffffffffu, v, i, 32);\
               }\
               out[threadIdx.x] = v;\
             }",
        );
        let mut gpu = tiny_gpu();
        let out = gpu.memory_mut().alloc_u32(32);
        let launch = Launch::new(ir, 1, (32, 1, 1)).arg(ParamValue::Ptr(out));
        gpu.run(&[launch]).expect("run");
        let v = gpu.memory().read_u32s(out);
        let expected = (0..32).sum::<u32>();
        assert!(v.iter().all(|&x| x == expected), "{v:?}");
    }

    #[test]
    fn grid_stride_loop_covers_all_elements() {
        let ir = compile(
            "__global__ void k(unsigned int* out, int n) {\
               for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;\
                    i += gridDim.x * blockDim.x) {\
                 out[i] = i;\
               }\
             }",
        );
        let mut gpu = tiny_gpu();
        let out = gpu.memory_mut().alloc_u32(500);
        let launch = Launch::new(ir, 2, (32, 1, 1))
            .arg(ParamValue::Ptr(out))
            .arg(ParamValue::I32(500));
        gpu.run(&[launch]).expect("run");
        let v = gpu.memory().read_u32s(out);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        let ir = compile("__global__ void k(float* p) { p[999] = 1.0f; }");
        let mut gpu = tiny_gpu();
        let p = gpu.memory_mut().alloc_f32(4);
        let launch = Launch::new(ir, 1, (32, 1, 1)).arg(ParamValue::Ptr(p));
        assert!(gpu.run(&[launch]).is_err());
    }

    #[test]
    fn metrics_are_sane() {
        let ir = compile(
            "__global__ void k(float* a, float* b, int n) {\
               int i = blockIdx.x * blockDim.x + threadIdx.x;\
               if (i < n) {\
                 float acc = 0.0f;\
                 for (int j = 0; j < 16; j++) { acc += a[(i + j * 64) % n]; }\
                 b[i] = acc;\
               }\
             }",
        );
        let mut gpu = tiny_gpu();
        let n = 512;
        let a = gpu.memory_mut().alloc_f32(n);
        let b = gpu.memory_mut().alloc_f32(n);
        let launch = Launch::new(ir, 8, (64, 1, 1))
            .arg(ParamValue::Ptr(a))
            .arg(ParamValue::Ptr(b))
            .arg(ParamValue::I32(n as i32));
        let res = gpu.run(&[launch]).expect("run");
        let m = res.metrics;
        assert!(m.cycles > 0);
        assert!(m.issued_slots > 0);
        assert!(m.total_slots >= m.issued_slots);
        let util = m.issue_slot_utilization();
        assert!((0.0..=100.0).contains(&util), "{util}");
        let occ = m.occupancy_pct();
        assert!((0.0..=100.0).contains(&occ), "{occ}");
        assert!(m.mem_transactions > 0);
        assert!(m.thread_insts > 0);
    }

    #[test]
    fn memory_bound_kernel_stalls_on_memory() {
        // Pointer-chase-ish: each iteration loads a fresh uncached address.
        let ir = compile(
            "__global__ void k(unsigned int* data, unsigned int* out, int n) {\
               unsigned int idx = threadIdx.x;\
               for (int i = 0; i < 64; i++) { idx = data[idx % n]; }\
               out[threadIdx.x] = idx;\
             }",
        );
        let mut gpu = tiny_gpu();
        let n = 4096;
        let data: Vec<u32> = (0..n as u64)
            .map(|i| ((i * 2654435761) % n as u64) as u32)
            .collect();
        let d = gpu.memory_mut().alloc_from_u32(&data);
        let o = gpu.memory_mut().alloc_u32(64);
        let launch = Launch::new(ir, 1, (64, 1, 1))
            .arg(ParamValue::Ptr(d))
            .arg(ParamValue::Ptr(o))
            .arg(ParamValue::I32(n));
        let res = gpu.run(&[launch]).expect("run");
        let m = res.metrics;
        assert!(
            m.mem_stall_pct() > 50.0,
            "dependent loads should dominate stalls: {}",
            m.mem_stall_pct()
        );
        assert!(m.issue_slot_utilization() < 50.0);
    }

    #[test]
    fn compute_bound_kernel_has_high_utilization() {
        let ir = compile(
            "__global__ void k(unsigned int* out) {\
               unsigned int x = threadIdx.x + 1u;\
               unsigned int y = threadIdx.x + 7u;\
               unsigned int z = threadIdx.x + 13u;\
               for (int i = 0; i < 200; i++) {\
                 x = x * 1664525u + 1013904223u;\
                 y = y * 22695477u + 1u;\
                 z = (z << 5) ^ (z >> 3) ^ x;\
               }\
               out[threadIdx.x] = x ^ y ^ z;\
             }",
        );
        let mut gpu = tiny_gpu();
        let o = gpu.memory_mut().alloc_u32(256);
        let launch = Launch::new(ir, 4, (64, 1, 1)).arg(ParamValue::Ptr(o));
        let res = gpu.run(&[launch]).expect("run");
        let m = res.metrics;
        assert!(
            m.issue_slot_utilization() > 40.0,
            "independent ALU chains should keep schedulers busy: {}",
            m.issue_slot_utilization()
        );
        // Memory stalls must be a small share of all issue slots (the
        // percentage-of-stalls metric is noisy when almost nothing stalls).
        let mem_share = m.stall_mem as f64 / m.total_slots as f64;
        assert!(mem_share < 0.25, "memory stall share {mem_share}");
    }

    #[test]
    fn two_launches_finish_in_order_with_leftover_policy() {
        let ir = compile(
            "__global__ void k(float* p, int n) {\
               int i = blockIdx.x * blockDim.x + threadIdx.x;\
               float acc = 0.0f;\
               for (int j = 0; j < 32; j++) { acc += p[(i + j) % n]; }\
               p[i % n] = acc;\
             }",
        );
        let mut gpu = tiny_gpu();
        let n = 1024;
        let p = gpu.memory_mut().alloc_f32(n);
        let mk = |ir: &thread_ir::KernelIr| {
            Launch::new(ir.clone(), 8, (128, 1, 1))
                .arg(ParamValue::Ptr(p))
                .arg(ParamValue::I32(n as i32))
        };
        let res = gpu.run(&[mk(&ir), mk(&ir)]).expect("run");
        assert!(res.launch_cycles(0) <= res.launch_cycles(1));
        assert_eq!(res.total_cycles - 1, res.launch_cycles(1));
    }

    #[test]
    fn barrier_deadlock_detected() {
        // Barrier expects 64 participants but only 32 threads exist. Stores
        // on both sides keep it past redundant-barrier elimination.
        let ir = compile(
            "__global__ void k(unsigned int* p) { p[0] = 1u; asm(\"bar.sync 1, 64;\"); p[1] = 2u; }",
        );
        let mut gpu = tiny_gpu();
        let p = gpu.memory_mut().alloc_u32(2);
        let launch = Launch::new(ir, 1, (32, 1, 1)).arg(ParamValue::Ptr(p));
        let err = gpu.run(&[launch]).unwrap_err();
        assert!(err.message().contains("progress"), "{err}");
    }

    fn budget_test_launch(gpu: &mut Gpu) -> Launch {
        let ir = compile(
            "__global__ void k(unsigned int* out) {\
               unsigned int x = threadIdx.x + 1u;\
               for (int i = 0; i < 300; i++) { x = x * 1664525u + 1013904223u; }\
               out[threadIdx.x + blockIdx.x * blockDim.x] = x;\
             }",
        );
        let o = gpu.memory_mut().alloc_u32(512);
        Launch::new(ir, 8, (64, 1, 1)).arg(ParamValue::Ptr(o))
    }

    #[test]
    fn budget_abort_fires_and_reports_monotone_cycles() {
        let full = {
            let mut gpu = tiny_gpu();
            let launch = budget_test_launch(&mut gpu);
            gpu.run(&[launch]).expect("full run").total_cycles
        };
        assert!(full > 100, "kernel too short for a budget test: {full}");

        let mut prev = 0u64;
        for budget in [1, 10, full / 4, full / 2, full - 2] {
            let mut gpu = tiny_gpu();
            let launch = budget_test_launch(&mut gpu);
            match gpu.run_with_budget(&[launch], budget).expect("budgeted") {
                BudgetedRun::Aborted { cycles_so_far } => {
                    assert!(cycles_so_far > budget, "{cycles_so_far} <= {budget}");
                    assert!(
                        cycles_so_far <= full,
                        "abort clock {cycles_so_far} past true total {full}"
                    );
                    assert!(
                        cycles_so_far >= prev,
                        "abort clock not monotone: {cycles_so_far} < {prev}"
                    );
                    prev = cycles_so_far;
                }
                BudgetedRun::Completed(r) => {
                    panic!(
                        "budget {budget} should abort, completed in {}",
                        r.total_cycles
                    )
                }
            }
        }
    }

    #[test]
    fn budget_at_or_above_total_completes_identically() {
        let mut gpu = tiny_gpu();
        let launch = budget_test_launch(&mut gpu);
        let full = gpu
            .clone()
            .run(std::slice::from_ref(&launch))
            .expect("full run");
        for budget in [full.total_cycles, full.total_cycles * 2, u64::MAX] {
            let mut g = gpu.clone();
            match g
                .run_with_budget(std::slice::from_ref(&launch), budget)
                .expect("budgeted")
            {
                BudgetedRun::Completed(r) => assert_eq!(r, full),
                BudgetedRun::Aborted { cycles_so_far } => {
                    panic!("budget {budget} aborted at {cycles_so_far}")
                }
            }
        }
    }

    #[test]
    fn budget_abort_matches_between_fast_and_naive_loop_bounds() {
        // The fast-forward loop may land past the budget at a different
        // clock than the naive loop, but both must (a) abort, and (b)
        // report a clock strictly past the budget and bounded by the true
        // total.
        let full = {
            let mut gpu = tiny_gpu();
            let launch = budget_test_launch(&mut gpu);
            gpu.run(&[launch]).expect("full").total_cycles
        };
        let budget = full / 3;
        for no_skip in [false, true] {
            let mut gpu = tiny_gpu();
            let launch = budget_test_launch(&mut gpu);
            let r = gpu
                .run_impl(&[launch], no_skip, budget)
                .expect("budgeted run");
            match r {
                BudgetedRun::Aborted { cycles_so_far } => {
                    assert!(cycles_so_far > budget);
                    assert!(cycles_so_far <= full);
                }
                BudgetedRun::Completed(_) => panic!("no_skip={no_skip} did not abort"),
            }
        }
    }

    #[test]
    fn occupancy_reflects_block_residency() {
        // 1024-thread blocks, 2 resident max (thread limit) → occupancy near
        // 100% while both run; tiny grid keeps it high.
        let ir = compile(
            "__global__ void k(float* p) {\
               float acc = 0.0f;\
               for (int j = 0; j < 64; j++) { acc += j; }\
               p[threadIdx.x + blockIdx.x * blockDim.x] = acc;\
             }",
        );
        let mut gpu = tiny_gpu();
        let p = gpu.memory_mut().alloc_f32(4096);
        let launch = Launch::new(ir, 2, (1024, 1, 1)).arg(ParamValue::Ptr(p));
        let res = gpu.run(&[launch]).expect("run");
        assert!(
            res.metrics.occupancy_pct() > 50.0,
            "two 32-warp blocks resident: {}",
            res.metrics.occupancy_pct()
        );
    }
}
