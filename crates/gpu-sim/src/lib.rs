#![warn(missing_docs)]

//! A cycle-level SIMT GPU simulator.
//!
//! This crate stands in for the NVIDIA 1080Ti / V100 hardware (plus
//! `nvprof`) used in the HFUSE paper. It executes [`thread_ir::KernelIr`]
//! programs both *functionally* (exact memory results, used to check that
//! fused kernels are equivalent to the originals) and *temporally* (a
//! cycle-driven model of warp scheduling, scoreboarding, memory latency and
//! bandwidth, named partial barriers, and occupancy-limited block
//! residency), reporting the metrics the paper collects: execution cycles,
//! issue-slot utilization, memory-instruction stall percentage, and achieved
//! occupancy.
//!
//! # Example
//!
//! ```
//! use cuda_frontend::parse_kernel;
//! use thread_ir::lower_kernel;
//! use gpu_sim::{Gpu, GpuConfig, Launch, ParamValue};
//!
//! let k = parse_kernel(
//!     "__global__ void fill(float* out, int n) {
//!          int i = blockIdx.x * blockDim.x + threadIdx.x;
//!          if (i < n) { out[i] = 2.0f; }
//!      }",
//! )?;
//! let ir = lower_kernel(&k)?;
//!
//! let mut gpu = Gpu::new(GpuConfig::pascal_like());
//! let buf = gpu.memory_mut().alloc_f32(64);
//! let launch = Launch::new(ir, 2, (32, 1, 1))
//!     .arg(ParamValue::Ptr(buf))
//!     .arg(ParamValue::I32(64));
//! let result = gpu.run(&[launch])?;
//! assert!(result.total_cycles > 0);
//! assert_eq!(gpu.memory().read_f32(buf, 63), 2.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod decode;
pub mod env;
pub mod exec;
pub mod launch;
pub mod memory;
pub mod metrics;
pub mod model;
pub mod occupancy;
pub mod sanitizer;
pub mod timing;

mod error;

pub use config::GpuConfig;
pub use decode::DecodedKernel;
pub use error::SimError;
pub use exec::IssueKind;
pub use launch::{Launch, ParamValue};
pub use memory::{BufferId, GpuMemory};
pub use metrics::{BudgetedRun, RunMetrics, RunResult};
pub use model::{fused_dyn_mix, model_estimate, static_class_mix, ClassMix, DynMix};
pub use occupancy::{blocks_per_sm, cost_estimate, OccupancyLimits};
pub use sanitizer::{ReportKind, Sanitizer, SanitizerReport};
pub use timing::Gpu;

mod diff_tests;
mod sim_tests;
