//! Kernel launch descriptors.

use std::sync::Arc;

use thread_ir::ir::{KernelIr, ParamKind};
use thread_ir::ScalarTy;

use crate::error::SimError;
use crate::memory::BufferId;

/// A kernel argument value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// `int`
    I32(i32),
    /// `unsigned int`
    U32(u32),
    /// `long long`
    I64(i64),
    /// `unsigned long long`
    U64(u64),
    /// `float`
    F32(f32),
    /// `double`
    F64(f64),
    /// Any pointer parameter, bound to a device buffer.
    Ptr(BufferId),
}

impl ParamValue {
    /// Canonical register bits of the value (see `thread_ir::lower` for the
    /// canonical integer forms).
    pub fn to_bits(self) -> u64 {
        match self {
            ParamValue::I32(v) => v as i64 as u64,
            ParamValue::U32(v) => u64::from(v),
            ParamValue::I64(v) => v as u64,
            ParamValue::U64(v) => v,
            ParamValue::F32(v) => u64::from(v.to_bits()),
            ParamValue::F64(v) => v.to_bits(),
            ParamValue::Ptr(b) => thread_ir::MemAddr::global(b.index(), 0).0,
        }
    }

    fn matches(self, kind: ParamKind) -> bool {
        matches!(
            (self, kind),
            (ParamValue::Ptr(_), ParamKind::Pointer)
                | (ParamValue::I32(_), ParamKind::Scalar(ScalarTy::I32))
                | (ParamValue::U32(_), ParamKind::Scalar(ScalarTy::U32))
                | (ParamValue::I64(_), ParamKind::Scalar(ScalarTy::I64))
                | (ParamValue::U64(_), ParamKind::Scalar(ScalarTy::U64))
                | (ParamValue::F32(_), ParamKind::Scalar(ScalarTy::F32))
                | (ParamValue::F64(_), ParamKind::Scalar(ScalarTy::F64))
        )
    }
}

/// One kernel launch: the compiled kernel, its grid/block geometry, dynamic
/// shared memory size, and arguments.
#[derive(Debug, Clone)]
pub struct Launch {
    /// The compiled kernel. Shared by reference so that cloning a launch
    /// (the fusion search clones one per profiled candidate) never deep-
    /// copies the instruction stream.
    pub kernel: Arc<KernelIr>,
    /// Number of blocks (1-D grid).
    pub grid_dim: u32,
    /// Threads per block along (x, y, z).
    pub block_dim: (u32, u32, u32),
    /// Dynamic `extern __shared__` bytes.
    pub dynamic_shared_bytes: u32,
    /// Argument values, matching `kernel.params`.
    pub args: Vec<ParamValue>,
}

impl Launch {
    /// Creates a launch with no arguments and no dynamic shared memory.
    /// Accepts either an owned [`KernelIr`] or an already-shared
    /// `Arc<KernelIr>`.
    pub fn new(
        kernel: impl Into<Arc<KernelIr>>,
        grid_dim: u32,
        block_dim: (u32, u32, u32),
    ) -> Self {
        Self {
            kernel: kernel.into(),
            grid_dim,
            block_dim,
            dynamic_shared_bytes: 0,
            args: Vec::new(),
        }
    }

    /// Appends an argument (builder style).
    #[must_use]
    pub fn arg(mut self, value: ParamValue) -> Self {
        self.args.push(value);
        self
    }

    /// Sets the dynamic shared memory size (builder style).
    #[must_use]
    pub fn dynamic_shared(mut self, bytes: u32) -> Self {
        self.dynamic_shared_bytes = bytes;
        self
    }

    /// Total threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block_dim.0 * self.block_dim.1 * self.block_dim.2
    }

    /// Total shared bytes per block (static + dynamic).
    pub fn shared_bytes_per_block(&self) -> u32 {
        self.kernel.shared_bytes(self.dynamic_shared_bytes)
    }

    /// Checks the launch configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for empty grids, oversized blocks, or an
    /// argument list that does not match the kernel signature.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.grid_dim == 0 {
            return Err(SimError::new("grid dimension must be positive"));
        }
        let tpb = self.threads_per_block();
        if tpb == 0 || tpb > 1024 {
            return Err(SimError::new(format!(
                "threads per block must be in 1..=1024, got {tpb}"
            )));
        }
        if self.args.len() != self.kernel.params.len() {
            return Err(SimError::new(format!(
                "kernel `{}` expects {} arguments, got {}",
                self.kernel.name,
                self.kernel.params.len(),
                self.args.len()
            )));
        }
        for (i, (arg, kind)) in self.args.iter().zip(&self.kernel.params).enumerate() {
            if !arg.matches(*kind) {
                return Err(SimError::new(format!(
                    "argument {i} of `{}` has wrong type (expected {kind:?})",
                    self.kernel.name
                )));
            }
        }
        Ok(())
    }

    /// Argument bits in parameter order.
    pub fn param_bits(&self) -> Vec<u64> {
        self.args.iter().map(|a| a.to_bits()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;
    use thread_ir::lower_kernel;

    fn kernel() -> KernelIr {
        lower_kernel(
            &parse_kernel("__global__ void k(float* p, int n) { p[0] = n; }").expect("parse"),
        )
        .expect("lower")
    }

    #[test]
    fn param_bits_canonical() {
        assert_eq!(ParamValue::I32(-1).to_bits(), u64::MAX);
        assert_eq!(ParamValue::U32(u32::MAX).to_bits(), u64::from(u32::MAX));
        assert_eq!(ParamValue::F32(1.5).to_bits(), u64::from(1.5f32.to_bits()));
    }

    #[test]
    fn validate_catches_arity_and_type_errors() {
        let k = kernel();
        let l = Launch::new(k.clone(), 1, (32, 1, 1));
        assert!(l.validate().is_err(), "missing args");

        let l = Launch::new(k.clone(), 1, (32, 1, 1))
            .arg(ParamValue::I32(0))
            .arg(ParamValue::I32(0));
        assert!(l.validate().is_err(), "pointer arg expected");

        let l = Launch::new(k, 1, (32, 1, 1))
            .arg(ParamValue::Ptr(BufferId(0)))
            .arg(ParamValue::I32(0));
        assert!(l.validate().is_ok());
    }

    #[test]
    fn validate_checks_geometry() {
        let k = kernel();
        let l = Launch::new(k.clone(), 0, (32, 1, 1))
            .arg(ParamValue::Ptr(BufferId(0)))
            .arg(ParamValue::I32(0));
        assert!(l.validate().is_err());
        let l = Launch::new(k, 1, (1025, 1, 1))
            .arg(ParamValue::Ptr(BufferId(0)))
            .arg(ParamValue::I32(0));
        assert!(l.validate().is_err());
    }

    #[test]
    fn threads_per_block_is_product() {
        let l = Launch::new(kernel(), 1, (64, 4, 2))
            .arg(ParamValue::Ptr(BufferId(0)))
            .arg(ParamValue::I32(0));
        assert_eq!(l.threads_per_block(), 512);
    }
}
