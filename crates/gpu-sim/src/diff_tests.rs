//! Differential tests of the event-driven fast-forward path against the
//! naive single-step reference loop ([`Gpu::run_naive`]). The fast-forward
//! must be *bit-identical* in every reported number — total cycles, the
//! full stall breakdown, occupancy inputs, trace samples — across kernels
//! that exercise each skip condition (long memory latencies, scoreboard
//! chains, barriers, multi-stream launches).
//!
//! Also home of the copy-on-write device-memory tests: cloning a [`Gpu`]
//! must not copy buffer bytes until one side writes.

#![cfg(test)]

use cuda_frontend::parse_kernel;
use thread_ir::lower_kernel;

use crate::config::GpuConfig;
use crate::launch::{Launch, ParamValue};
use crate::timing::Gpu;

fn compile(src: &str) -> thread_ir::KernelIr {
    lower_kernel(&parse_kernel(src).expect("parse")).expect("lower")
}

/// Runs the same launches through the fast-forward and the naive loop on
/// identical fresh devices and asserts every reported metric matches.
fn assert_paths_identical(cfg: GpuConfig, build: impl Fn(&mut Gpu) -> Vec<Launch>) {
    let mut fast = Gpu::new(cfg.clone());
    let launches = build(&mut fast);
    let fast_res = fast.run(&launches).expect("fast-forward run");

    let mut naive = Gpu::new(cfg);
    let launches = build(&mut naive);
    let naive_res = naive.run_naive(&launches).expect("naive run");

    assert_eq!(
        fast_res.total_cycles, naive_res.total_cycles,
        "total cycles diverge"
    );
    assert_eq!(fast_res.metrics, naive_res.metrics, "metrics diverge");
    assert_eq!(
        fast_res.launch_finish, naive_res.launch_finish,
        "finish cycles diverge"
    );
}

fn memory_bound_launch(gpu: &mut Gpu) -> Vec<Launch> {
    // Dependent loads: every iteration waits out a full DRAM round trip, so
    // the device spends most cycles with every warp scoreboard-blocked —
    // the prime fast-forward case.
    let ir = compile(
        "__global__ void chase(unsigned int* data, unsigned int* out, int n) {\
           unsigned int idx = threadIdx.x;\
           for (int i = 0; i < 48; i++) { idx = data[idx % n]; }\
           out[threadIdx.x] = idx;\
         }",
    );
    let n = 4096;
    let data: Vec<u32> = (0..n as u64)
        .map(|i| ((i * 2654435761) % n as u64) as u32)
        .collect();
    let d = gpu.memory_mut().alloc_from_u32(&data);
    let o = gpu.memory_mut().alloc_u32(64);
    vec![Launch::new(ir, 2, (64, 1, 1))
        .arg(ParamValue::Ptr(d))
        .arg(ParamValue::Ptr(o))
        .arg(ParamValue::I32(n))]
}

fn compute_bound_launch(gpu: &mut Gpu) -> Vec<Launch> {
    // Long in-register ALU chains: almost no idle windows, so this checks
    // the fast-forward never fires incorrectly on a busy device.
    let ir = compile(
        "__global__ void alu(unsigned int* out) {\
           unsigned int x = threadIdx.x + 1u;\
           unsigned int y = threadIdx.x + 7u;\
           for (int i = 0; i < 150; i++) {\
             x = x * 1664525u + 1013904223u;\
             y = (y << 5) ^ (y >> 3) ^ x;\
           }\
           out[threadIdx.x] = x ^ y;\
         }",
    );
    let o = gpu.memory_mut().alloc_u32(256);
    vec![Launch::new(ir, 4, (64, 1, 1)).arg(ParamValue::Ptr(o))]
}

fn barrier_heavy_launch(gpu: &mut Gpu) -> Vec<Launch> {
    // Alternating loads and barriers: warps park in the Sync state (which
    // imposes no wakeup time) while others drain memory latencies.
    let ir = compile(
        "__global__ void reduce(float* out, float* in) {\
           __shared__ float s[128];\
           int t = threadIdx.x;\
           s[t] = in[blockIdx.x * 128 + t];\
           __syncthreads();\
           for (int stride = 64; stride > 0; stride = stride / 2) {\
             if (t < stride) { s[t] += s[t + stride]; }\
             __syncthreads();\
           }\
           if (t == 0) { out[blockIdx.x] = s[0]; }\
         }",
    );
    let input: Vec<f32> = (0..512).map(|i| i as f32).collect();
    let i = gpu.memory_mut().alloc_from_f32(&input);
    let o = gpu.memory_mut().alloc_f32(4);
    vec![Launch::new(ir, 4, (128, 1, 1))
        .arg(ParamValue::Ptr(o))
        .arg(ParamValue::Ptr(i))]
}

fn multi_stream_launches(gpu: &mut Gpu) -> Vec<Launch> {
    // Two back-to-back launches (leftover dispatch policy): exercises
    // fast-forward across the gap where one launch drains before the next
    // one's blocks dispatch.
    let mem = compile(
        "__global__ void gather(float* out, float* in, int n) {\
           int i = blockIdx.x * blockDim.x + threadIdx.x;\
           float acc = 0.0f;\
           for (int j = 0; j < 24; j++) { acc += in[(i * 97 + j * 1031) % n]; }\
           out[i % n] = acc;\
         }",
    );
    let alu = compile(
        "__global__ void spin(unsigned int* out) {\
           unsigned int x = threadIdx.x;\
           for (int i = 0; i < 80; i++) { x = x * 1103515245u + 12345u; }\
           out[threadIdx.x] = x;\
         }",
    );
    let n = 2048;
    let a = gpu.memory_mut().alloc_f32(n as usize);
    let b = gpu.memory_mut().alloc_f32(n as usize);
    let c = gpu.memory_mut().alloc_u32(64);
    vec![
        Launch::new(mem, 4, (64, 1, 1))
            .arg(ParamValue::Ptr(a))
            .arg(ParamValue::Ptr(b))
            .arg(ParamValue::I32(n)),
        Launch::new(alu, 1, (64, 1, 1)).arg(ParamValue::Ptr(c)),
    ]
}

#[test]
fn fast_forward_matches_naive_memory_bound() {
    assert_paths_identical(GpuConfig::test_tiny(), memory_bound_launch);
}

#[test]
fn fast_forward_matches_naive_memory_bound_pascal() {
    assert_paths_identical(GpuConfig::pascal_like(), memory_bound_launch);
}

#[test]
fn fast_forward_matches_naive_compute_bound() {
    assert_paths_identical(GpuConfig::test_tiny(), compute_bound_launch);
}

#[test]
fn fast_forward_matches_naive_barrier_heavy() {
    assert_paths_identical(GpuConfig::test_tiny(), barrier_heavy_launch);
}

#[test]
fn fast_forward_matches_naive_multi_stream() {
    assert_paths_identical(GpuConfig::test_tiny(), multi_stream_launches);
}

#[test]
fn fast_forward_detects_same_deadlock() {
    // Barrier expecting 64 participants with only 32 threads: the naive
    // loop spins to the deadlock threshold; the fast-forward must report
    // the same error without actually spinning.
    // Stores on both sides keep the barrier past redundant-barrier
    // elimination, so the deadlock is still reachable.
    let ir = compile(
        "__global__ void k(unsigned int* p) { p[0] = 1u; asm(\"bar.sync 1, 64;\"); p[1] = 2u; }",
    );
    let run_one = |naive: bool| {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let p = gpu.memory_mut().alloc_u32(2);
        let launch = Launch::new(ir.clone(), 1, (32, 1, 1)).arg(ParamValue::Ptr(p));
        if naive {
            gpu.run_naive(&[launch]).unwrap_err()
        } else {
            gpu.run(&[launch]).unwrap_err()
        }
    };
    assert_eq!(run_one(false).message(), run_one(true).message());
}

#[test]
fn traced_windows_identical_across_long_stall_spans() {
    // trace_interval far smaller than the DRAM round trip, so one
    // all-stalled window spans several sample boundaries: every window
    // must still be emitted, at the same cycle with the same contents.
    let build = memory_bound_launch;
    let interval = 16;

    let mut fast = Gpu::new(GpuConfig::test_tiny());
    let launches = build(&mut fast);
    let (fast_res, fast_trace) = fast.run_traced(&launches, interval).expect("fast traced");

    let mut naive = Gpu::new(GpuConfig::test_tiny());
    let launches = build(&mut naive);
    let (naive_res, naive_trace) = naive
        .run_traced_naive(&launches, interval)
        .expect("naive traced");

    assert_eq!(fast_res.total_cycles, naive_res.total_cycles);
    assert_eq!(fast_res.metrics, naive_res.metrics);
    assert_eq!(fast_trace.len(), naive_trace.len(), "sample count diverges");
    for (f, n) in fast_trace.iter().zip(&naive_trace) {
        assert_eq!(f.cycle, n.cycle);
        assert_eq!(
            f.issue_util.to_bits(),
            n.issue_util.to_bits(),
            "cycle {}",
            f.cycle
        );
        assert_eq!(
            f.avg_warps.to_bits(),
            n.avg_warps.to_bits(),
            "cycle {}",
            f.cycle
        );
    }
    // The whole point of the scenario: idle spans must cover multiple
    // consecutive all-stalled windows.
    assert!(
        fast_trace.iter().filter(|s| s.issue_util == 0.0).count() >= 2,
        "expected several fully-stalled trace windows"
    );
}

#[test]
fn cloning_gpu_shares_buffers_until_written() {
    let mut base = Gpu::new(GpuConfig::test_tiny());
    let data: Vec<f32> = (0..1024).map(|i| i as f32).collect();
    let buf = base.memory_mut().alloc_from_f32(&data);

    // Clone is O(1) per buffer: both devices point at the same bytes.
    let mut clone = base.clone();
    assert!(
        base.memory().shares_buffer(clone.memory(), buf),
        "clone must not copy bytes"
    );

    // A write through one clone materializes a private copy there...
    clone.memory_mut().write_f32s(buf, &[-1.0]);
    assert!(!base.memory().shares_buffer(clone.memory(), buf));
    assert_eq!(clone.memory().read_f32(buf, 0), -1.0);
    // ...and leaves the other side untouched.
    assert_eq!(base.memory().read_f32(buf, 0), 0.0);
    assert_eq!(base.memory().read_f32s(buf), data);
}

#[test]
fn kernel_store_unshares_only_written_buffer() {
    let ir = compile(
        "__global__ void k(float* out, float* in) {\
           out[threadIdx.x] = in[threadIdx.x] * 2.0f;\
         }",
    );
    let mut base = Gpu::new(GpuConfig::test_tiny());
    let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
    let i = base.memory_mut().alloc_from_f32(&input);
    let o = base.memory_mut().alloc_f32(32);

    let mut worker = base.clone();
    let launch = Launch::new(ir, 1, (32, 1, 1))
        .arg(ParamValue::Ptr(o))
        .arg(ParamValue::Ptr(i));
    worker.run(&[launch]).expect("run");

    // The read-only input stays shared; only the output buffer was copied.
    assert!(
        base.memory().shares_buffer(worker.memory(), i),
        "read-only buffer copied"
    );
    assert!(!base.memory().shares_buffer(worker.memory(), o));
    assert_eq!(worker.memory().read_f32(o, 3), 6.0);
    assert_eq!(base.memory().read_f32(o, 3), 0.0, "base output clobbered");
}

/// Builds launches for one fuzzer corpus case: the unfused pair plus the
/// horizontally fused kernel, all in one stream. Replaying the fuzz corpus
/// through the timing engine checks the fast-forward on machine-generated
/// control flow (partial barriers, shuffles, atomics) rather than only the
/// hand-written scenarios above.
fn fuzz_case_launches(seed: u64, case: u64) -> impl Fn(&mut Gpu) -> Vec<Launch> {
    move |gpu: &mut Gpu| {
        let (pair, mut input_rng) = hfuse_fuzz::case_streams(seed, case);
        let f1 = parse_kernel(&pair.k1.render()).expect("parse k1");
        let f2 = parse_kernel(&pair.k2.render()).expect("parse k2");
        let fused = hfuse_core::fuse::horizontal_fuse(
            &f1,
            (pair.k1.threads, 1, 1),
            &f2,
            (pair.k2.threads, 1, 1),
        )
        .expect("fuse");

        let in1 = hfuse_fuzz::gen::CasePair::input_data(&mut input_rng, pair.k1.n);
        let in2 = hfuse_fuzz::gen::CasePair::input_data(&mut input_rng, pair.k2.n);
        let out1 = gpu.memory_mut().alloc_u32(pair.k1.out_len() as usize);
        let in1b = gpu.memory_mut().alloc_from_u32(&in1);
        let out2 = gpu.memory_mut().alloc_u32(pair.k2.out_len() as usize);
        let in2b = gpu.memory_mut().alloc_from_u32(&in2);
        let fout1 = gpu.memory_mut().alloc_u32(pair.k1.out_len() as usize);
        let fin1 = gpu.memory_mut().alloc_from_u32(&in1);
        let fout2 = gpu.memory_mut().alloc_u32(pair.k2.out_len() as usize);
        let fin2 = gpu.memory_mut().alloc_from_u32(&in2);

        vec![
            Launch::new(
                lower_kernel(&f1).expect("lower k1"),
                pair.k1.grid,
                (pair.k1.threads, 1, 1),
            )
            .arg(ParamValue::Ptr(out1))
            .arg(ParamValue::Ptr(in1b))
            .arg(ParamValue::I32(pair.k1.n as i32)),
            Launch::new(
                lower_kernel(&f2).expect("lower k2"),
                pair.k2.grid,
                (pair.k2.threads, 1, 1),
            )
            .arg(ParamValue::Ptr(out2))
            .arg(ParamValue::Ptr(in2b))
            .arg(ParamValue::I32(pair.k2.n as i32)),
            Launch::new(
                lower_kernel(&fused.function).expect("lower fused"),
                pair.k1.grid,
                (fused.block_threads(), 1, 1),
            )
            .arg(ParamValue::Ptr(fout1))
            .arg(ParamValue::Ptr(fin1))
            .arg(ParamValue::I32(pair.k1.n as i32))
            .arg(ParamValue::Ptr(fout2))
            .arg(ParamValue::Ptr(fin2))
            .arg(ParamValue::I32(pair.k2.n as i32)),
        ]
    }
}

#[test]
fn fast_forward_matches_naive_on_fuzz_corpus() {
    for case in 0..6 {
        assert_paths_identical(GpuConfig::test_tiny(), fuzz_case_launches(0, case));
    }
}

#[test]
fn fast_forward_matches_naive_on_fuzz_corpus_pascal() {
    // A realistic config changes latencies, MSHR counts, and DRAM token
    // rates — different skip windows over the same corpus kernels.
    for case in 0..3 {
        assert_paths_identical(GpuConfig::pascal_like(), fuzz_case_launches(42, case));
    }
}

/// Runs the same launches with and without the warp-uniform broadcast fast
/// path and asserts every reported number and the device memory match: the
/// fast path must be observationally invisible.
fn assert_uniform_paths_identical(cfg: GpuConfig, build: impl Fn(&mut Gpu) -> Vec<Launch>) {
    let mut uniform = Gpu::new(cfg.clone());
    uniform.set_uniform_exec(true);
    let launches = build(&mut uniform);
    let uni_res = uniform.run(&launches).expect("uniform run");

    let mut scalar = Gpu::new(cfg);
    scalar.set_uniform_exec(false);
    let launches = build(&mut scalar);
    let sca_res = scalar.run(&launches).expect("scalar run");

    assert_eq!(
        uni_res.total_cycles, sca_res.total_cycles,
        "total cycles diverge"
    );
    assert_eq!(uni_res.metrics, sca_res.metrics, "metrics diverge");
    assert_eq!(
        uni_res.launch_finish, sca_res.launch_finish,
        "finish cycles diverge"
    );
    // Functional equivalence: every output buffer byte-identical.
    for launch in &launches {
        for arg in &launch.args {
            if let ParamValue::Ptr(buf) = arg {
                assert_eq!(
                    uniform.memory().read_u32s(*buf),
                    scalar.memory().read_u32s(*buf),
                    "buffer contents diverge"
                );
            }
        }
    }
}

#[test]
fn uniform_path_matches_scalar_memory_bound() {
    assert_uniform_paths_identical(GpuConfig::test_tiny(), memory_bound_launch);
}

#[test]
fn uniform_path_matches_scalar_compute_bound() {
    assert_uniform_paths_identical(GpuConfig::test_tiny(), compute_bound_launch);
}

#[test]
fn uniform_path_matches_scalar_barrier_heavy() {
    assert_uniform_paths_identical(GpuConfig::test_tiny(), barrier_heavy_launch);
}

#[test]
fn uniform_path_matches_scalar_on_fuzz_corpus() {
    for case in 0..4 {
        assert_uniform_paths_identical(GpuConfig::test_tiny(), fuzz_case_launches(7, case));
    }
    for case in 0..2 {
        assert_uniform_paths_identical(GpuConfig::pascal_like(), fuzz_case_launches(0xdead, case));
    }
}

/// Runs the same launches with and without the lane-vectorized (SoA,
/// branch-free masked 32-lane loop) interpreter and asserts every reported
/// number and the device memory match: vectorization must be
/// observationally invisible, down to the event stream the sanitizer and
/// barrier machinery observe.
fn assert_vector_paths_identical(cfg: GpuConfig, build: impl Fn(&mut Gpu) -> Vec<Launch>) {
    let mut vector = Gpu::new(cfg.clone());
    vector.set_vector_exec(true);
    let launches = build(&mut vector);
    let vec_res = vector.run(&launches).expect("vector run");

    let mut scalar = Gpu::new(cfg);
    scalar.set_vector_exec(false);
    let launches = build(&mut scalar);
    let sca_res = scalar.run(&launches).expect("scalar run");

    assert_eq!(
        vec_res.total_cycles, sca_res.total_cycles,
        "total cycles diverge"
    );
    assert_eq!(vec_res.metrics, sca_res.metrics, "metrics diverge");
    assert_eq!(
        vec_res.launch_finish, sca_res.launch_finish,
        "finish cycles diverge"
    );
    for launch in &launches {
        for arg in &launch.args {
            if let ParamValue::Ptr(buf) = arg {
                assert_eq!(
                    vector.memory().read_u32s(*buf),
                    scalar.memory().read_u32s(*buf),
                    "buffer contents diverge"
                );
            }
        }
    }
}

fn divergent_branch_launch(gpu: &mut Gpu) -> Vec<Launch> {
    // Nested data-dependent branches splinter the warp into several active
    // masks; the vectorized loop must execute exactly the lanes the scalar
    // reconvergence stack would, in the same issue slots.
    let ir = compile(
        "__global__ void diverge(unsigned int* out, unsigned int* in, int n) {\
           int i = blockIdx.x * blockDim.x + threadIdx.x;\
           unsigned int v = in[i % n];\
           if ((threadIdx.x & 1u) == 0u) {\
             if (v % 3u == 0u) { v = v * 2654435761u; }\
             else { for (int j = 0; j < (int)(v % 7u); j++) { v += in[(i + j) % n]; } }\
           } else {\
             if (v > 1000u) { v = v >> 3; } else { v = v << 2; }\
           }\
           out[i % n] = v;\
         }",
    );
    let n = 256;
    let data: Vec<u32> = (0..n as u64).map(|i| (i * 2246822519) as u32).collect();
    let i = gpu.memory_mut().alloc_from_u32(&data);
    let o = gpu.memory_mut().alloc_u32(n);
    vec![Launch::new(ir, 2, (96, 1, 1))
        .arg(ParamValue::Ptr(o))
        .arg(ParamValue::Ptr(i))
        .arg(ParamValue::I32(n as i32))]
}

fn partial_barrier_launch(gpu: &mut Gpu) -> Vec<Launch> {
    // A named partial barrier over the first two warps only (the HFUSE
    // fused-kernel synchronization primitive) while the remaining warp
    // streams through uninhibited.
    let ir = compile(
        "__global__ void partial(unsigned int* out, unsigned int* in) {\
           __shared__ unsigned int s[64];\
           unsigned int t = threadIdx.x;\
           if (t < 64u) {\
             s[t] = in[blockIdx.x * 64u + t];\
             asm(\"bar.sync 1, 64;\");\
             out[blockIdx.x * 64u + t] = s[t ^ 1u] + s[63u - t];\
           } else {\
             unsigned int x = t;\
             for (int i = 0; i < 40; i++) { x = x * 1664525u + 1013904223u; }\
             out[96u + t] = x;\
           }\
         }",
    );
    let data: Vec<u32> = (0..128).map(|i| i * 31 + 5).collect();
    let i = gpu.memory_mut().alloc_from_u32(&data);
    let o = gpu.memory_mut().alloc_u32(256);
    vec![Launch::new(ir, 2, (96, 1, 1))
        .arg(ParamValue::Ptr(o))
        .arg(ParamValue::Ptr(i))]
}

#[test]
fn vector_path_matches_scalar_memory_bound() {
    assert_vector_paths_identical(GpuConfig::test_tiny(), memory_bound_launch);
}

#[test]
fn vector_path_matches_scalar_compute_bound() {
    assert_vector_paths_identical(GpuConfig::test_tiny(), compute_bound_launch);
}

#[test]
fn vector_path_matches_scalar_barrier_heavy() {
    assert_vector_paths_identical(GpuConfig::test_tiny(), barrier_heavy_launch);
}

#[test]
fn vector_path_matches_scalar_multi_stream() {
    assert_vector_paths_identical(GpuConfig::test_tiny(), multi_stream_launches);
}

#[test]
fn vector_path_matches_scalar_divergent_branches() {
    assert_vector_paths_identical(GpuConfig::test_tiny(), divergent_branch_launch);
    assert_vector_paths_identical(GpuConfig::pascal_like(), divergent_branch_launch);
}

#[test]
fn vector_path_matches_scalar_partial_barrier() {
    assert_vector_paths_identical(GpuConfig::test_tiny(), partial_barrier_launch);
    assert_vector_paths_identical(GpuConfig::pascal_like(), partial_barrier_launch);
}

#[test]
fn vector_path_matches_scalar_on_fuzz_corpus() {
    for case in 0..4 {
        assert_vector_paths_identical(GpuConfig::test_tiny(), fuzz_case_launches(7, case));
    }
    for case in 0..2 {
        assert_vector_paths_identical(GpuConfig::pascal_like(), fuzz_case_launches(0xdead, case));
    }
}

#[test]
fn env_var_forces_naive_loop() {
    // `HFUSE_SIM_NO_SKIP` selects the naive loop inside plain `run()`;
    // results must (trivially) match the fast path. Run both paths through
    // the API the escape hatch guards to make sure the hatch still exists.
    let build = memory_bound_launch;
    let mut a = Gpu::new(GpuConfig::test_tiny());
    let launches = build(&mut a);
    let fast = a.run(&launches).expect("fast");

    std::env::set_var("HFUSE_SIM_NO_SKIP", "1");
    let mut b = Gpu::new(GpuConfig::test_tiny());
    let launches = build(&mut b);
    let naive = b.run(&launches).expect("naive via env");
    std::env::remove_var("HFUSE_SIM_NO_SKIP");

    assert_eq!(fast.total_cycles, naive.total_cycles);
    assert_eq!(fast.metrics, naive.metrics);
}
