//! Calibrated analytic cost model for ranking fusion candidates.
//!
//! The branch-and-bound search orders candidates by a static estimate
//! before profiling; [`crate::cost_estimate`] ranks with a single scalar
//! instruction weight. This module refines that into a *per-latency-class*
//! model. Each original kernel is profiled natively **once** per search,
//! yielding its measured per-class issue histogram
//! (`RunMetrics::class_issues`); a fused candidate that gives `d1` threads
//! to kernel 1 and `d2` to kernel 2 then has the per-thread dynamic mix
//!
//! ```text
//! mix_c = I1[c] / d1  +  I2[c] / d2
//! ```
//!
//! because grid-stride kernels redistribute a fixed total amount of work
//! over however many threads the partition grants them ([`fused_dyn_mix`]).
//! The estimated cost is
//!
//! ```text
//! waves × threads_per_block × Σ_c  mix_c × class_latency_c × k_c
//! ```
//!
//! where `waves` is the occupancy-limited wave count (the same resource
//! arithmetic as [`crate::cost_estimate`]), `class_latency_c` comes from the
//! device's [`crate::config::Latencies`], and the dimensionless constants
//! `k_c` are **calibrated** once against fully simulated cycle counts on the
//! paper benchmark pairs ([`fit_constants`], regenerated with
//! `hfuse bench --calibrate`) and checked in as [`CALIBRATED_K`].
//!
//! The model never decides correctness: the search still profiles every
//! candidate it cannot prove worse, and the model-exempt top-k candidates
//! are profiled without a budget, so the reported winner is bit-identical
//! to the exhaustive search regardless of model quality (see
//! `search_fusion_config`).

use thread_ir::ir::{BinIr, Inst, KernelIr, UnIr};

use crate::config::GpuConfig;
use crate::exec::IssueKind;
use crate::occupancy::blocks_per_sm;

/// Number of fitted features: one per latency class, one for
/// spilled-register operand traffic (spill reloads have their own latency
/// constant in the config, distinct from the `LocalMem` class), and one for
/// inter-kernel load imbalance.
pub const NUM_FEATURES: usize = IssueKind::COUNT + 2;

/// Index of the spill feature in calibration vectors.
pub const SPILL_FEATURE: usize = IssueKind::COUNT;

/// Index of the load-imbalance feature. A fused block retires when its
/// *slowest* member interval finishes, so the cost is closer to
/// `max(t_1, t_2)` than to the per-class sum `Σ t_i`; since
/// `max(a, b) = (a + b)/2 + |a − b|/2`, an explicit `max_i t_i − mean_i t_i`
/// regressor lets the linear fit express the max exactly at the
/// total-latency level.
pub const IMBALANCE_FEATURE: usize = IssueKind::COUNT + 1;

/// Dimensionless per-class calibration constants, fitted by
/// [`fit_constants`] on the paper pairs (pascal_like / 1080Ti config at the
/// default workloads, the same device and scale the search benchmarks run
/// at) and checked in. Regenerate with `hfuse bench --calibrate`. Classes
/// that never appear in the calibration corpus keep the neutral constant
/// 1.0.
// Fitted on 152 candidate observations from the 16 paper pairs (1080Ti).
pub const CALIBRATED_K: [f64; NUM_FEATURES] = [
    0.0011288692397585546, // alu
    0.0,                   // div
    1.0,                   // special (absent from calibration corpus)
    0.008567288187936516,  // shuffle
    0.0028157213029884657, // shared_mem
    0.0033959280125160107, // shared_atomic
    0.0002914979311023525, // global_mem
    0.0008489820027517356, // global_atomic
    1.0,                   // local_mem (absent from calibration corpus)
    0.0,                   // control
    0.0007698938827140428, // barrier
    0.0017321662241208725, // spill operands
    0.0001710410255377661, // load imbalance
];

/// Static per-thread instruction mix of a kernel over the latency classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassMix {
    /// Instruction count per class, indexed by [`IssueKind::index`].
    pub counts: [u64; IssueKind::COUNT],
    /// Total spilled-register operand references (each one costs an extra
    /// spill access on issue).
    pub spills: u64,
}

impl ClassMix {
    /// Sum of both mixes (a fused kernel is approximately the union of its
    /// parts; useful for sanity checks).
    pub fn add(&self, other: &ClassMix) -> ClassMix {
        let mut counts = self.counts;
        for (c, o) in counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        ClassMix {
            counts,
            spills: self.spills + other.spills,
        }
    }

    /// Total classified instructions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Memory-space provenance of a register value, for classifying `Ld`/`St`/
/// `Atom` without executing: `SharedAddr`/`LocalAddr` results (and pointer
/// arithmetic on them) are tagged, everything else defaults to global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpaceTag {
    Shared,
    Local,
    Other,
}

/// Computes the static per-thread [`ClassMix`] of a kernel in one linear
/// pass, mirroring the `IssueKind` classification the interpreter applies
/// at execution time. Memory instructions are classified by a simple
/// address-provenance dataflow (`SharedAddr`/`LocalAddr` tags propagate
/// through moves, casts, and add/sub pointer arithmetic; anything else is
/// global). Control flow is ignored — counts are static, not dynamic — so
/// the mix is a per-iteration fingerprint, which is exactly what the
/// calibrated ranking needs (loop trip counts scale all candidates of a
/// pair alike).
pub fn static_class_mix(kernel: &KernelIr) -> ClassMix {
    let mut mix = ClassMix::default();
    let mut tag = vec![SpaceTag::Other; kernel.num_regs as usize];
    let mut spilled = vec![false; kernel.num_regs as usize];
    for &r in &kernel.spilled_regs {
        spilled[r as usize] = true;
    }
    let mut srcs: Vec<u32> = Vec::with_capacity(3);
    for inst in &kernel.insts {
        // Spill traffic: one extra access per spilled operand (sources and
        // destination), matching the issue-time accounting.
        srcs.clear();
        inst.srcs_into(&mut srcs);
        if let Some(d) = inst.dst() {
            srcs.push(d);
        }
        mix.spills += srcs.iter().filter(|&&r| spilled[r as usize]).count() as u64;

        let kind = match inst {
            Inst::Imm { .. }
            | Inst::Mov { .. }
            | Inst::Cast { .. }
            | Inst::Special { .. }
            | Inst::LdParam { .. }
            | Inst::SharedAddr { .. }
            | Inst::LocalAddr { .. } => IssueKind::Alu,
            Inst::Bin { op, .. } => {
                if matches!(op, BinIr::Div | BinIr::Rem) {
                    IssueKind::Div
                } else {
                    IssueKind::Alu
                }
            }
            Inst::Un { op, .. } => match op {
                UnIr::Sqrt | UnIr::Rsqrt | UnIr::Exp | UnIr::Log => IssueKind::Special,
                _ => IssueKind::Alu,
            },
            Inst::Ld { addr, .. } | Inst::St { addr, .. } => match tag[*addr as usize] {
                SpaceTag::Shared => IssueKind::SharedMem,
                SpaceTag::Local => IssueKind::LocalMem,
                SpaceTag::Other => IssueKind::GlobalMem,
            },
            Inst::Atom { addr, .. } => match tag[*addr as usize] {
                SpaceTag::Shared => IssueKind::SharedAtomic,
                _ => IssueKind::GlobalAtomic,
            },
            Inst::Shfl { .. } | Inst::Vote { .. } => IssueKind::Shuffle,
            Inst::Bar { .. } => IssueKind::Barrier,
            Inst::Bra { .. } | Inst::Jmp { .. } | Inst::Ret => IssueKind::Control,
        };
        mix.counts[kind.index()] += 1;

        // Propagate address-space provenance to the written register.
        let new_tag = match inst {
            Inst::SharedAddr { .. } => Some(SpaceTag::Shared),
            Inst::LocalAddr { .. } => Some(SpaceTag::Local),
            Inst::Mov { src, .. } => Some(tag[*src as usize]),
            Inst::Cast { src, .. } => Some(tag[*src as usize]),
            Inst::Bin {
                op: BinIr::Add | BinIr::Sub,
                a,
                b,
                ..
            } => {
                // Pointer arithmetic: base ± offset keeps the base's space.
                let (ta, tb) = (tag[*a as usize], tag[*b as usize]);
                Some(if ta != SpaceTag::Other { ta } else { tb })
            }
            _ => None,
        };
        if let Some(d) = inst.dst() {
            tag[d as usize] = new_tag.unwrap_or(SpaceTag::Other);
        }
    }
    mix
}

/// Base issue latency of one class on `cfg` — the same constants the
/// timing engine charges in its post-issue accounting (without the dynamic
/// surcharges for conflicts, uncoalesced transactions, or queueing, which
/// the calibration constants absorb on average).
pub fn class_latency(cfg: &GpuConfig, kind: IssueKind) -> u64 {
    let lat = &cfg.latencies;
    u64::from(match kind {
        IssueKind::Alu => lat.alu,
        IssueKind::Div => lat.div,
        IssueKind::Special => lat.special,
        IssueKind::Shuffle => lat.shuffle,
        IssueKind::SharedMem => lat.shared_mem,
        IssueKind::SharedAtomic => lat.shared_atomic,
        IssueKind::GlobalMem => lat.global_mem,
        IssueKind::GlobalAtomic => lat.global_atomic,
        IssueKind::LocalMem => lat.local_mem,
        IssueKind::Control => lat.alu,
        IssueKind::Barrier => lat.alu,
    })
}

/// Per-thread *dynamic* instruction mix of one fused candidate, derived
/// from the original kernels' measured per-class issue histograms (see
/// [`fused_dyn_mix`]). Counts are fractional because they are per-thread
/// averages of whole-launch measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DynMix {
    /// Expected per-thread issues per class, indexed by
    /// [`IssueKind::index`].
    pub counts: [f64; IssueKind::COUNT],
    /// Expected per-thread spilled-operand accesses.
    pub spills: f64,
    /// Latency-weighted load imbalance between the fused members:
    /// `max_i t_i − mean_i t_i` where `t_i` is member *i*'s per-thread
    /// latency-weighted issue total (see [`IMBALANCE_FEATURE`]).
    pub imbalance: f64,
}

impl DynMix {
    /// Treats a static mix as the dynamic one (each static instruction
    /// executed exactly once per thread, perfectly balanced) — the
    /// degenerate straight-line case, and a convenience for tests.
    pub fn from_static(mix: &ClassMix) -> DynMix {
        let mut counts = [0.0; IssueKind::COUNT];
        for (d, &s) in counts.iter_mut().zip(&mix.counts) {
            *d = s as f64;
        }
        DynMix {
            counts,
            spills: mix.spills as f64,
            imbalance: 0.0,
        }
    }
}

/// Builds the per-thread dynamic mix of a fused candidate from its members'
/// measured histograms. `members` pairs each original kernel's whole-launch
/// per-class issue counts (`RunMetrics::class_issues` from one native run)
/// with the thread count `d_i` the candidate partition grants it: a
/// grid-stride kernel redistributes its fixed total work over `d_i` threads
/// per block, so its per-thread contribution scales as `I_i[c] / d_i`.
///
/// Spill traffic is candidate-specific (it appears when the register bound
/// is applied to the *fused* kernel), so it is estimated from the fused
/// kernel's static spill-operand count scaled by the average dynamic
/// executions per static instruction.
pub fn fused_dyn_mix(
    cfg: &GpuConfig,
    members: &[([u64; IssueKind::COUNT], u32)],
    static_spills: u64,
    static_insts: u64,
) -> DynMix {
    let mut counts = [0.0; IssueKind::COUNT];
    let mut totals = Vec::with_capacity(members.len());
    for (issues, d) in members {
        let d = f64::from((*d).max(1));
        let mut t = 0.0;
        for (kind, (acc, &n)) in IssueKind::ALL.iter().zip(counts.iter_mut().zip(issues)) {
            *acc += n as f64 / d;
            t += n as f64 / d * class_latency(cfg, *kind) as f64;
        }
        totals.push(t);
    }
    let dyn_total: f64 = counts.iter().sum();
    let avg_execs = dyn_total / static_insts.max(1) as f64;
    let max = totals.iter().fold(0.0f64, |m, &t| m.max(t));
    let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
    DynMix {
        counts,
        spills: static_spills as f64 * avg_execs,
        imbalance: max - mean,
    }
}

/// The per-thread feature vector of one candidate: `count_c × latency_c`
/// per class plus the spill term. The model estimate and the calibration
/// fit share this definition.
pub fn feature_vector(cfg: &GpuConfig, mix: &DynMix) -> [f64; NUM_FEATURES] {
    let mut x = [0.0; NUM_FEATURES];
    for k in IssueKind::ALL {
        x[k.index()] = mix.counts[k.index()] * class_latency(cfg, k) as f64;
    }
    x[SPILL_FEATURE] = mix.spills * f64::from(cfg.latencies.spill_access);
    x[IMBALANCE_FEATURE] = mix.imbalance;
    x
}

/// Calibrated analytic cycle estimate for one fusion candidate.
///
/// `waves × threads × Σ_c count_c × latency_c × k_c`, with `waves` from the
/// occupancy calculator. Unschedulable candidates (zero resident blocks)
/// return `u64::MAX`. Deterministic, pure, and cheap — the search evaluates
/// it for every candidate in every mode so reported scores are comparable
/// across arms.
pub fn model_estimate(
    cfg: &GpuConfig,
    regs_per_thread: u32,
    threads_per_block: u32,
    shared_bytes: u32,
    grid_dim: u32,
    mix: &DynMix,
) -> u64 {
    let blocks = blocks_per_sm(cfg, regs_per_thread, threads_per_block, shared_bytes);
    if blocks == 0 {
        return u64::MAX;
    }
    let concurrent = blocks.saturating_mul(cfg.num_sms).max(1);
    let waves = f64::from(grid_dim.div_ceil(concurrent));
    let x = feature_vector(cfg, mix);
    let per_thread: f64 = x
        .iter()
        .zip(&CALIBRATED_K)
        .map(|(xi, ki)| xi * ki)
        .sum::<f64>()
        .max(0.0);
    let est = waves * f64::from(threads_per_block.max(1)) * per_thread;
    if est >= u64::MAX as f64 {
        u64::MAX
    } else {
        est.round() as u64
    }
}

/// One calibration observation: a candidate's occupancy-scaled feature
/// vector and its fully simulated cycle count.
#[derive(Debug, Clone)]
pub struct CalibrationRow {
    /// `waves × threads × feature_vector` — the model's regressors.
    pub features: [f64; NUM_FEATURES],
    /// Simulated total cycles (the regression target).
    pub cycles: u64,
}

impl CalibrationRow {
    /// Builds the regressors for one candidate the same way
    /// [`model_estimate`] consumes them.
    pub fn new(
        cfg: &GpuConfig,
        regs_per_thread: u32,
        threads_per_block: u32,
        shared_bytes: u32,
        grid_dim: u32,
        mix: &DynMix,
        cycles: u64,
    ) -> Option<Self> {
        let blocks = blocks_per_sm(cfg, regs_per_thread, threads_per_block, shared_bytes);
        if blocks == 0 {
            return None;
        }
        let concurrent = blocks.saturating_mul(cfg.num_sms).max(1);
        let scale = f64::from(grid_dim.div_ceil(concurrent)) * f64::from(threads_per_block.max(1));
        let mut features = feature_vector(cfg, mix);
        for f in &mut features {
            *f *= scale;
        }
        Some(CalibrationRow { features, cycles })
    }
}

/// Fits the per-class constants by *relative* least squares over `rows`
/// (normal equations with a small ridge term, solved by Gaussian
/// elimination — no external dependencies). Each observation is weighted by
/// `1 / cycles`, i.e. the objective is `Σ ((pred − cycles) / cycles)²`:
/// the model ranks candidates *within* a pair, so a 10% miss on a small
/// crypto candidate must count the same as a 10% miss on a deep-learning
/// candidate a thousand times larger — unweighted least squares lets the
/// largest pairs dominate and degenerates the small-class constants to
/// zero. Features that never occur in the corpus keep the neutral constant
/// 1.0; fitted constants are clamped to non-negative (a negative per-class
/// cost is physically meaningless and would let the ranking invert on
/// extrapolation).
pub fn fit_constants(rows: &[CalibrationRow]) -> [f64; NUM_FEATURES] {
    const N: usize = NUM_FEATURES;
    const RIDGE: f64 = 1e-9;
    let mut ata = [[0.0f64; N]; N];
    let mut aty = [0.0f64; N];
    let mut seen = [false; N];
    // Relative weighting: divide each row (features and target) by its
    // cycle count, making every observation's target 1.0.
    let weighted: Vec<[f64; N]> = rows
        .iter()
        .map(|r| {
            let w = 1.0 / (r.cycles as f64).max(1.0);
            let mut f = r.features;
            for v in &mut f {
                *v *= w;
            }
            f
        })
        .collect();
    // Normalize the system so the ridge term is scale-free.
    let norm: f64 = weighted
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-300);
    for (row, wf) in rows.iter().zip(&weighted) {
        for i in 0..N {
            let xi = wf[i] / norm;
            if row.features[i] != 0.0 {
                seen[i] = true;
            }
            aty[i] += xi * (1.0 / norm);
            for j in 0..N {
                ata[i][j] += xi * wf[j] / norm;
            }
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += RIDGE;
    }

    // Gaussian elimination with partial pivoting on the N×N system.
    let mut m = [[0.0f64; N + 1]; N];
    for i in 0..N {
        m[i][..N].copy_from_slice(&ata[i]);
        m[i][N] = aty[i];
    }
    for col in 0..N {
        let pivot = (col..N)
            .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
            .unwrap();
        m.swap(col, pivot);
        let p = m[col][col];
        if p.abs() < 1e-30 {
            continue;
        }
        let pivot_row = m[col];
        for row in m.iter_mut().take(N).skip(col + 1) {
            let f = row[col] / p;
            for (x, pv) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                *x -= f * pv;
            }
        }
    }
    let mut k = [0.0f64; N];
    for col in (0..N).rev() {
        let mut v = m[col][N];
        for c in col + 1..N {
            v -= m[col][c] * k[c];
        }
        k[col] = if m[col][col].abs() < 1e-30 {
            0.0
        } else {
            v / m[col][col]
        };
    }
    for i in 0..N {
        if !seen[i] {
            k[i] = 1.0;
        } else if !k[i].is_finite() || k[i] < 0.0 {
            k[i] = 0.0;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use thread_ir::ir::{ParamKind, ScalarTy};

    fn mk_kernel(insts: Vec<Inst>, spilled: Vec<u32>) -> KernelIr {
        KernelIr {
            name: "t".into(),
            insts,
            num_regs: 16,
            params: vec![ParamKind::Pointer],
            shared_static_bytes: 64,
            uses_dynamic_shared: false,
            dynamic_shared_offset: 0,
            local_bytes: 0,
            spilled_regs: spilled,
            pressure: 16,
        }
    }

    #[test]
    fn class_mix_classifies_by_address_provenance() {
        let k = mk_kernel(
            vec![
                Inst::SharedAddr { dst: 0, offset: 0 },
                // Pointer arithmetic keeps the shared tag.
                Inst::Bin {
                    op: BinIr::Add,
                    ty: ScalarTy::U64,
                    dst: 1,
                    a: 0,
                    b: 2,
                },
                Inst::Ld {
                    ty: ScalarTy::U32,
                    dst: 3,
                    addr: 1,
                }, // shared
                Inst::Ld {
                    ty: ScalarTy::U32,
                    dst: 4,
                    addr: 5,
                }, // untagged → global
                Inst::Atom {
                    op: thread_ir::ir::AtomOp::Add,
                    ty: ScalarTy::U32,
                    dst: 6,
                    addr: 1,
                    val: 3,
                }, // shared atomic
                Inst::Bar {
                    id: 0,
                    count: thread_ir::ir::BarCount::All,
                },
                Inst::Ret,
            ],
            vec![],
        );
        let mix = static_class_mix(&k);
        assert_eq!(mix.counts[IssueKind::SharedMem.index()], 1);
        assert_eq!(mix.counts[IssueKind::GlobalMem.index()], 1);
        assert_eq!(mix.counts[IssueKind::SharedAtomic.index()], 1);
        assert_eq!(mix.counts[IssueKind::Barrier.index()], 1);
        assert_eq!(mix.counts[IssueKind::Control.index()], 1);
        // SharedAddr + Bin are plain ALU issues.
        assert_eq!(mix.counts[IssueKind::Alu.index()], 2);
        assert_eq!(mix.total(), 7);
    }

    #[test]
    fn class_mix_counts_spilled_operands() {
        let k = mk_kernel(
            vec![
                Inst::Bin {
                    op: BinIr::Add,
                    ty: ScalarTy::I32,
                    dst: 1,
                    a: 2,
                    b: 3,
                },
                Inst::Ret,
            ],
            vec![2, 1],
        );
        // Sources 2 (spilled) + 3, destination 1 (spilled) → 2 references.
        assert_eq!(static_class_mix(&k).spills, 2);
    }

    #[test]
    fn overwriting_a_tagged_register_clears_the_tag() {
        let k = mk_kernel(
            vec![
                Inst::SharedAddr { dst: 0, offset: 0 },
                Inst::Imm { dst: 0, value: 0 }, // clobbers the tag
                Inst::Ld {
                    ty: ScalarTy::U32,
                    dst: 1,
                    addr: 0,
                }, // now global
                Inst::Ret,
            ],
            vec![],
        );
        let mix = static_class_mix(&k);
        assert_eq!(mix.counts[IssueKind::GlobalMem.index()], 1);
        assert_eq!(mix.counts[IssueKind::SharedMem.index()], 0);
    }

    #[test]
    fn model_estimate_penalizes_lower_occupancy() {
        let cfg = GpuConfig::pascal_like();
        let mut mix = ClassMix::default();
        mix.counts[IssueKind::Alu.index()] = 100;
        mix.counts[IssueKind::GlobalMem.index()] = 10;
        let mix = DynMix::from_static(&mix);
        let cheap = model_estimate(&cfg, 32, 512, 24 * 1024, 64, &mix);
        let expensive = model_estimate(&cfg, 64, 512, 24 * 1024, 64, &mix);
        assert!(expensive > cheap, "{expensive} <= {cheap}");
    }

    #[test]
    fn model_estimate_unschedulable_is_max() {
        let cfg = GpuConfig::pascal_like();
        let mix = DynMix::default();
        assert_eq!(model_estimate(&cfg, 32, 256, 200 * 1024, 8, &mix), u64::MAX);
    }

    #[test]
    fn fused_dyn_mix_scales_member_work_by_thread_share() {
        let cfg = GpuConfig::pascal_like();
        let mut i1 = [0u64; IssueKind::COUNT];
        i1[IssueKind::Alu.index()] = 1000;
        let mut i2 = [0u64; IssueKind::COUNT];
        i2[IssueKind::GlobalMem.index()] = 400;
        // Kernel 1 gets 100 threads, kernel 2 gets 200: per-thread work is
        // 10 ALU issues and 2 global-memory issues.
        let mix = fused_dyn_mix(&cfg, &[(i1, 100), (i2, 200)], 6, 12);
        assert_eq!(mix.counts[IssueKind::Alu.index()], 10.0);
        assert_eq!(mix.counts[IssueKind::GlobalMem.index()], 2.0);
        // Spills: 6 static spill operands × (12 dynamic / 12 static) = 6.
        assert_eq!(mix.spills, 6.0);
        // Shrinking kernel 2's share raises its per-thread work — the
        // balance effect the static mix cannot see. Kernel 2 is the
        // latency-heavy (global-memory) side, so concentrating its work on
        // fewer threads also widens the gap between the member totals.
        let skewed = fused_dyn_mix(&cfg, &[(i1, 200), (i2, 100)], 0, 12);
        assert_eq!(skewed.counts[IssueKind::Alu.index()], 5.0);
        assert_eq!(skewed.counts[IssueKind::GlobalMem.index()], 4.0);
        // Imbalance = max(t_i) − mean(t_i) over latency-weighted member
        // totals, and it grows as the split skews.
        let (t1, t2) = (
            10.0 * class_latency(&cfg, IssueKind::Alu) as f64,
            2.0 * class_latency(&cfg, IssueKind::GlobalMem) as f64,
        );
        let expect = t1.max(t2) - (t1 + t2) / 2.0;
        assert!((mix.imbalance - expect).abs() < 1e-9, "{}", mix.imbalance);
        assert!(skewed.imbalance > mix.imbalance);
    }

    #[test]
    fn fit_recovers_exact_linear_model() {
        // Synthesize rows from known constants; the fit must recover them.
        let truth: [f64; NUM_FEATURES] = {
            let mut t = [0.0; NUM_FEATURES];
            t[IssueKind::Alu.index()] = 0.5;
            t[IssueKind::GlobalMem.index()] = 2.0;
            t[SPILL_FEATURE] = 1.5;
            t
        };
        let mut rows = Vec::new();
        for i in 1..12u64 {
            let mut features = [0.0; NUM_FEATURES];
            features[IssueKind::Alu.index()] = (i * 37) as f64;
            features[IssueKind::GlobalMem.index()] = (i * i * 11) as f64;
            features[SPILL_FEATURE] = (i % 3) as f64 * 100.0;
            let y: f64 = features.iter().zip(&truth).map(|(x, k)| x * k).sum();
            rows.push(CalibrationRow {
                features,
                cycles: y.round() as u64,
            });
        }
        let k = fit_constants(&rows);
        // Tolerances absorb the ridge term and the integer rounding of the
        // synthetic cycle targets.
        assert!((k[IssueKind::Alu.index()] - 0.5).abs() < 1e-2, "{k:?}");
        assert!(
            (k[IssueKind::GlobalMem.index()] - 2.0).abs() < 1e-2,
            "{k:?}"
        );
        assert!((k[SPILL_FEATURE] - 1.5).abs() < 1e-2, "{k:?}");
        // Unseen classes keep the neutral constant.
        assert_eq!(k[IssueKind::Div.index()], 1.0);
    }

    #[test]
    fn checked_in_constants_are_sane() {
        for (i, k) in CALIBRATED_K.iter().enumerate() {
            assert!(k.is_finite() && *k >= 0.0, "k[{i}] = {k}");
        }
    }
}
