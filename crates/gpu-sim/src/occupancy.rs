//! The occupancy calculator: how many blocks of a kernel fit on one SM.
//!
//! This implements the resource arithmetic the paper's search algorithm
//! (Fig. 6) relies on: residency is bounded by registers, shared memory,
//! threads, and hardware block slots, and the binding constraint determines
//! whether a register cap can recover occupancy.

use crate::config::GpuConfig;

/// The per-resource block limits and the resulting residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyLimits {
    /// Limit imposed by the register file.
    pub by_registers: u32,
    /// Limit imposed by shared memory.
    pub by_shared_mem: u32,
    /// Limit imposed by the thread count.
    pub by_threads: u32,
    /// Limit imposed by hardware block slots.
    pub by_block_slots: u32,
}

impl OccupancyLimits {
    /// The achievable resident blocks per SM (minimum over resources).
    pub fn blocks(&self) -> u32 {
        self.by_registers
            .min(self.by_shared_mem)
            .min(self.by_threads)
            .min(self.by_block_slots)
    }

    /// The resource that binds (useful in reports). Ties break in the order
    /// registers, shared memory, threads, block slots.
    pub fn binding_resource(&self) -> &'static str {
        let b = self.blocks();
        if self.by_registers == b {
            "registers"
        } else if self.by_shared_mem == b {
            "shared memory"
        } else if self.by_threads == b {
            "threads"
        } else {
            "block slots"
        }
    }
}

/// Computes per-resource residency limits for a kernel launch.
///
/// `regs_per_thread` is the kernel's register demand (after any bound),
/// `threads_per_block` the block size, `shared_bytes` the total static +
/// dynamic shared memory per block.
pub fn occupancy_limits(
    cfg: &GpuConfig,
    regs_per_thread: u32,
    threads_per_block: u32,
    shared_bytes: u32,
) -> OccupancyLimits {
    let regs_per_block = regs_per_thread.max(1) * threads_per_block.max(1);
    OccupancyLimits {
        by_registers: cfg.regs_per_sm / regs_per_block.max(1),
        by_shared_mem: cfg
            .shared_per_sm
            .checked_div(shared_bytes)
            .unwrap_or(u32::MAX),
        by_threads: cfg.max_threads_per_sm / threads_per_block.max(1),
        by_block_slots: cfg.max_blocks_per_sm,
    }
}

/// Resident blocks per SM for a launch (the minimum across resources). Zero
/// means the block cannot be scheduled at all (e.g. too much shared memory).
pub fn blocks_per_sm(
    cfg: &GpuConfig,
    regs_per_thread: u32,
    threads_per_block: u32,
    shared_bytes: u32,
) -> u32 {
    occupancy_limits(cfg, regs_per_thread, threads_per_block, shared_bytes).blocks()
}

/// Analytic cost estimate for ordering fusion candidates best-first before
/// profiling (the branch-and-bound heuristic in the configuration search).
///
/// The estimate is `waves × weighted_insts × threads_per_block`, where
/// `waves` is how many rounds of occupancy-limited concurrent blocks the
/// grid needs (`grid_dim / (resident blocks × SMs)`, rounded up) and
/// `weighted_insts` is a caller-supplied static instruction weight for one
/// thread of the kernel. Candidates that cannot be scheduled at all
/// (zero resident blocks) cost `u64::MAX`.
///
/// This is a *ranking* heuristic only — it never decides correctness. The
/// search profiles every candidate; the estimate just makes the likely
/// winners go first so the shared cycle budget tightens quickly.
pub fn cost_estimate(
    cfg: &GpuConfig,
    regs_per_thread: u32,
    threads_per_block: u32,
    shared_bytes: u32,
    grid_dim: u32,
    weighted_insts: u64,
) -> u64 {
    let blocks = blocks_per_sm(cfg, regs_per_thread, threads_per_block, shared_bytes);
    if blocks == 0 {
        return u64::MAX;
    }
    let concurrent = blocks.saturating_mul(cfg.num_sms).max(1);
    let waves = u64::from(grid_dim.div_ceil(concurrent));
    waves
        .saturating_mul(weighted_insts)
        .saturating_mul(u64::from(threads_per_block.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::pascal_like()
    }

    #[test]
    fn paper_example_registers_bind() {
        // Paper §II-A: 24K shared, 512 threads, 64 regs/thread → 2 blocks,
        // registers are the bottleneck.
        let lim = occupancy_limits(&cfg(), 64, 512, 24 * 1024);
        assert_eq!(lim.blocks(), 2);
        assert_eq!(lim.binding_resource(), "registers");
    }

    #[test]
    fn paper_example_halving_registers_doubles_occupancy() {
        // Paper §II-A: dropping to 32 regs/thread gives 4 blocks.
        let lim = occupancy_limits(&cfg(), 32, 512, 24 * 1024);
        assert_eq!(lim.blocks(), 4);
        assert_eq!(lim.by_registers, 4);
        assert_eq!(lim.by_shared_mem, 4);
    }

    #[test]
    fn thread_limit_binds_for_large_blocks() {
        let lim = occupancy_limits(&cfg(), 16, 1024, 0);
        assert_eq!(lim.by_threads, 2);
        assert_eq!(lim.blocks(), 2);
        // registers allow 65536/(16*1024) = 4 blocks, so threads bind.
        assert_eq!(lim.binding_resource(), "threads");
    }

    #[test]
    fn block_slots_bind_for_tiny_blocks() {
        let lim = occupancy_limits(&cfg(), 8, 32, 0);
        assert_eq!(lim.blocks(), cfg().max_blocks_per_sm);
        assert_eq!(lim.binding_resource(), "block slots");
    }

    #[test]
    fn zero_shared_is_unlimited() {
        let lim = occupancy_limits(&cfg(), 32, 256, 0);
        assert_eq!(lim.by_shared_mem, u32::MAX);
    }

    #[test]
    fn oversized_block_cannot_schedule() {
        assert_eq!(blocks_per_sm(&cfg(), 32, 256, 200 * 1024), 0);
    }

    #[test]
    fn cost_estimate_penalizes_lower_occupancy() {
        // Same work, but the high-register variant fits fewer resident
        // blocks, so it needs more waves and must rank worse.
        let cheap = cost_estimate(&cfg(), 32, 512, 24 * 1024, 64, 100);
        let expensive = cost_estimate(&cfg(), 64, 512, 24 * 1024, 64, 100);
        assert!(expensive > cheap, "{expensive} <= {cheap}");
    }

    #[test]
    fn cost_estimate_unschedulable_is_max() {
        assert_eq!(cost_estimate(&cfg(), 32, 256, 200 * 1024, 8, 10), u64::MAX);
    }

    #[test]
    fn more_registers_monotonically_reduce_occupancy() {
        let mut prev = u32::MAX;
        for regs in [16, 32, 64, 128, 255] {
            let b = blocks_per_sm(&cfg(), regs, 256, 0);
            assert!(b <= prev, "regs {regs}: {b} > {prev}");
            prev = b;
        }
    }
}
