//! Run metrics mirroring the `nvprof` counters the paper reports.

use crate::exec::IssueKind;

/// Aggregate counters for one [`crate::Gpu::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Total elapsed cycles (first launch start to last block completion).
    pub cycles: u64,
    /// Instructions issued (one per warp-group issue).
    pub issued_slots: u64,
    /// Scheduler issue slots while the owning SM had resident work.
    pub total_slots: u64,
    /// Stalled slots blocked on outstanding global/local memory results or
    /// memory-pipeline backpressure.
    pub stall_mem: u64,
    /// Stalled slots blocked on ALU/special results (execution dependency).
    pub stall_exec: u64,
    /// Stalled slots where all live warps were parked at barriers.
    pub stall_sync: u64,
    /// Slots with no issuable warp for other reasons (e.g. all warps done
    /// but the block not yet retired).
    pub stall_other: u64,
    /// Sum over active SM cycles of resident unfinished warps.
    pub active_warp_cycles: u64,
    /// Sum over SMs of cycles with at least one resident block.
    pub active_sm_cycles: u64,
    /// Hardware warp capacity per SM (for occupancy normalization).
    pub max_warps_per_sm: u32,
    /// Dynamic instruction count (thread-level, i.e. group size summed).
    pub thread_insts: u64,
    /// Global-memory transactions issued.
    pub mem_transactions: u64,
    /// Issued warp-group instructions per latency class, indexed by
    /// [`IssueKind::index`]. The per-class mix is what the calibrated
    /// analytic search model fits against, and lets reports explain *where*
    /// a candidate's cycles went.
    pub class_issues: [u64; IssueKind::COUNT],
}

impl RunMetrics {
    /// Fraction of issue slots that issued an instruction (the paper's
    /// *Issue Slot Utilization*), in percent.
    pub fn issue_slot_utilization(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        100.0 * self.issued_slots as f64 / self.total_slots as f64
    }

    /// Percentage of stall slots attributable to memory (the paper's
    /// *MemInst Stall*). Slots with no classifiable warp (`stall_other`,
    /// e.g. schedulers with no warps assigned) are excluded, matching how
    /// `nvprof` samples stall reasons from live warps.
    pub fn mem_stall_pct(&self) -> f64 {
        let stalls = self.stall_mem + self.stall_exec + self.stall_sync;
        // With (almost) no stalls the ratio is meaningless noise; report 0
        // like nvprof does for fully-issuing kernels.
        if stalls == 0 || stalls * 200 < self.total_slots {
            return 0.0;
        }
        100.0 * self.stall_mem as f64 / stalls as f64
    }

    /// Achieved occupancy: average resident warps per active cycle over the
    /// hardware maximum, in percent.
    pub fn occupancy_pct(&self) -> f64 {
        if self.active_sm_cycles == 0 || self.max_warps_per_sm == 0 {
            return 0.0;
        }
        100.0 * self.active_warp_cycles as f64
            / (self.active_sm_cycles as f64 * f64::from(self.max_warps_per_sm))
    }

    /// Issued warp-group instructions in one latency class.
    pub fn class_count(&self, kind: IssueKind) -> u64 {
        self.class_issues[kind.index()]
    }

    /// `(class, count)` rows of the issue histogram, densest first, zero
    /// classes omitted — display form for reports.
    pub fn class_histogram(&self) -> Vec<(IssueKind, u64)> {
        let mut rows: Vec<(IssueKind, u64)> = IssueKind::ALL
            .iter()
            .map(|&k| (k, self.class_issues[k.index()]))
            .filter(|&(_, n)| n > 0)
            .collect();
        rows.sort_by_key(|&(k, n)| (std::cmp::Reverse(n), k.index()));
        rows
    }
}

/// One sample of a utilization timeline (see `Gpu::run_traced`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Cycle at the *end* of the sampled window.
    pub cycle: u64,
    /// Issue-slot utilization within the window (%).
    pub issue_util: f64,
    /// Average resident unfinished warps per SM within the window.
    pub avg_warps: f64,
}

/// The outcome of one timed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycle at which the last block of the last-finishing launch completed.
    pub total_cycles: u64,
    /// Aggregate counters.
    pub metrics: RunMetrics,
    /// Per-launch completion cycle (last block of that launch).
    pub launch_finish: Vec<u64>,
}

impl RunResult {
    /// Elapsed cycles of one launch (all launches start at cycle 0, so this
    /// is its completion cycle).
    pub fn launch_cycles(&self, launch_idx: usize) -> u64 {
        self.launch_finish[launch_idx]
    }
}

/// The outcome of a budgeted run (see `Gpu::run_with_budget`): either the
/// run finished within the caller's cycle budget, or it was cut off as soon
/// as the simulated clock strictly exceeded it.
///
/// `cycles_so_far` is a *lower bound* on the run's true cycle count and is
/// monotonically non-decreasing in the budget: the engine walks the same
/// deterministic clock sequence regardless of the budget and aborts at the
/// first clock value past it. An aborted run leaves device memory partially
/// mutated; callers profiling candidates on cloned devices can simply
/// discard the clone.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // transient return value, one per profiled run
pub enum BudgetedRun {
    /// The run finished with total cycles ≤ budget (identical to an
    /// unbudgeted run).
    Completed(RunResult),
    /// The simulated clock strictly exceeded the budget with work still
    /// outstanding.
    Aborted {
        /// Simulated clock at the abort point (strictly greater than the
        /// budget, and at most the run's true total cycle count).
        cycles_so_far: u64,
    },
}

impl BudgetedRun {
    /// The completed result, if the run finished within budget.
    pub fn completed(self) -> Option<RunResult> {
        match self {
            BudgetedRun::Completed(r) => Some(r),
            BudgetedRun::Aborted { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_stall_percentages() {
        let m = RunMetrics {
            cycles: 100,
            issued_slots: 30,
            total_slots: 100,
            stall_mem: 49,
            stall_exec: 14,
            stall_sync: 7,
            stall_other: 0,
            active_warp_cycles: 3200,
            active_sm_cycles: 100,
            max_warps_per_sm: 64,
            thread_insts: 0,
            mem_transactions: 0,
            class_issues: [0; IssueKind::COUNT],
        };
        assert!((m.issue_slot_utilization() - 30.0).abs() < 1e-9);
        assert!((m.mem_stall_pct() - 70.0).abs() < 1e-9);
        assert!((m.occupancy_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn class_histogram_sorts_densest_first_and_drops_zeros() {
        let mut m = RunMetrics::default();
        m.class_issues[IssueKind::Alu.index()] = 10;
        m.class_issues[IssueKind::GlobalMem.index()] = 40;
        m.class_issues[IssueKind::Barrier.index()] = 2;
        assert_eq!(m.class_count(IssueKind::GlobalMem), 40);
        assert_eq!(
            m.class_histogram(),
            vec![
                (IssueKind::GlobalMem, 40),
                (IssueKind::Alu, 10),
                (IssueKind::Barrier, 2),
            ]
        );
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.issue_slot_utilization(), 0.0);
        assert_eq!(m.mem_stall_pct(), 0.0);
        assert_eq!(m.occupancy_pct(), 0.0);
    }
}
